//! Kill → recover → finish: pool-wide crash recovery, proven bitwise.
//!
//! The scenario behind `bench recover`:
//!
//! 1. **Reference run** — a pooled fleet covering every engine family
//!    (the continuous SNS variants, all four conventional baselines, and
//!    an anomaly-decorated engine) replays a trace end to end,
//!    uninterrupted; each final engine state is serialized with
//!    `sns-codec`.
//! 2. **Interrupted run** — an identical fleet replays the *first half*
//!    of the trace, the pool is checkpointed to a file-backed
//!    [`CheckpointStore`], and the pool is dropped mid-trace (the
//!    "crash"). A **brand-new** pool recovers every stream from disk and
//!    finishes the trace.
//! 3. **Verdict** — the recovered fleet's final snapshots are serialized
//!    and compared **byte for byte** against the reference's. Because
//!    the codec is canonical, byte equality is full state equality:
//!    factors, Grams, window orders, pending events, RNG states,
//!    detector statistics — everything.
//!
//! Any divergence — a field the codec forgot, dead state that turned out
//! to be live, an iteration order that did not survive the disk round
//! trip — fails the scenario (and CI, which runs it with `--smoke`).
//!
//! ## WAL mode (`--wal`)
//!
//! With [`RecoverConfig::wal`] set, the interrupted run exercises the
//! full durability stack instead of a single hand-placed checkpoint:
//! the fleet journals every op to a per-stream WAL, a background
//! [`Checkpointer`] commits delta checkpoints while the first chunk of
//! the trace is replaying, the daemon is stopped, a second chunk lands
//! **only in the journal**, and the crash follows. Recovery goes
//! through [`recover_pool_wal`]: newest checkpoint + bounded journal
//! tail. The verdict additionally proves the replay was *bounded* —
//! more than zero units (the tail existed) and strictly fewer than the
//! full journaled history (the checkpoints actually truncated it).

use crate::report::{f, Table};
use sns_codec::daemon::{CheckpointPolicy, Checkpointer};
use sns_codec::store::{checkpoint_pool, recover_pool, CheckpointStore};
use sns_codec::to_bytes;
use sns_codec::wal::{recover_pool_wal, WalSet};
use sns_core::als::AlsOptions;
use sns_core::config::{AlgorithmKind, Precision, SnsConfig};
use sns_data::replay::{replay, ReplayPlan};
use sns_data::{generate, nytaxi_like, DatasetSpec};
use sns_runtime::BatchJournal;
use sns_runtime::{AnomalyConfig, EnginePool, EngineSpec, PoolConfig, SnsError};
use sns_stream::StreamTuple;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How to size the recover scenario.
#[derive(Debug, Clone)]
pub struct RecoverConfig {
    /// Events generated for the trace.
    pub events: usize,
    /// Worker shards of both pools.
    pub shards: usize,
    /// Pool base seed.
    pub base_seed: u64,
    /// Trace generator seed.
    pub data_seed: u64,
    /// Directory the checkpoint is written to (kept afterwards so CI can
    /// upload the manifest as an artifact).
    pub dir: PathBuf,
    /// Run the WAL-mode scenario (journal + background checkpoint
    /// daemon + bounded tail replay) instead of the single hand-placed
    /// checkpoint.
    pub wal: bool,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        RecoverConfig {
            events: 20_000,
            shards: 4,
            base_seed: 0x5eed,
            data_seed: 42,
            dir: PathBuf::from("recover-checkpoint"),
            wal: false,
        }
    }
}

/// Outcome for one stream of the fleet.
#[derive(Debug, Clone)]
pub struct RecoverCell {
    /// Pooled stream id.
    pub stream_id: u64,
    /// Engine display name.
    pub name: String,
    /// Factor updates at end of trace (recovered run).
    pub updates: u64,
    /// Final fitness (recovered run).
    pub fitness: f64,
    /// Serialized snapshot size in bytes.
    pub snapshot_bytes: usize,
    /// Whether the recovered final state is byte-identical to the
    /// uninterrupted run's.
    pub identical: bool,
}

/// A completed recover scenario.
#[derive(Debug, Clone)]
pub struct RecoverReport {
    /// Dataset the trace mirrors.
    pub dataset: String,
    /// Events in the trace.
    pub events: usize,
    /// Trace index the crash was injected at.
    pub crash_at: usize,
    /// Per-stream outcomes, in stream-id order.
    pub cells: Vec<RecoverCell>,
    /// Path of the checkpoint manifest left on disk.
    pub manifest: PathBuf,
    /// Whether the WAL-mode scenario ran.
    pub wal: bool,
    /// WAL units replayed during recovery (0 in checkpoint-only mode).
    pub replayed: u64,
    /// Total units journaled at crash time — the replay's hard ceiling.
    pub replay_bound: u64,
    /// Checkpoint generations the background daemon committed.
    pub daemon_commits: u64,
}

impl RecoverReport {
    /// True when every stream recovered bitwise.
    pub fn all_identical(&self) -> bool {
        self.cells.iter().all(|c| c.identical)
    }

    /// WAL-mode verdict: the journal tail existed (some units replayed)
    /// and the checkpoints truncated it (strictly fewer than the full
    /// journaled history). Vacuously true in checkpoint-only mode.
    pub fn replay_bounded(&self) -> bool {
        !self.wal || (self.replayed > 0 && self.replayed < self.replay_bound)
    }

    /// Renders the scenario as an aligned text table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["stream", "engine", "updates", "fitness", "bytes", "bitwise"]);
        for c in &self.cells {
            t.row(vec![
                c.stream_id.to_string(),
                c.name.clone(),
                c.updates.to_string(),
                f(c.fitness),
                c.snapshot_bytes.to_string(),
                if c.identical { "identical".to_string() } else { "DIVERGED".to_string() },
            ]);
        }
        let mut out = t.render();
        if self.wal {
            out.push_str(&format!(
                "wal replay: {} of {} journaled units ({} daemon commits) — {}\n",
                self.replayed,
                self.replay_bound,
                self.daemon_commits,
                if self.replay_bounded() { "bounded" } else { "UNBOUNDED" },
            ));
        }
        out
    }

    /// Serializes the machine-readable report (schema in the README).
    pub fn to_json(&self) -> String {
        fn jf(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.6}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"sns-recover\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"dataset\": \"{}\", \"synthetic\": true, \"events\": {}, \"crash_at\": {}, \"streams\": {}, \"mode\": \"{}\"}},\n",
            self.dataset,
            self.events,
            self.crash_at,
            self.cells.len(),
            if self.wal { "wal" } else { "checkpoint" },
        ));
        out.push_str(&format!("  \"all_identical\": {},\n", self.all_identical()));
        if self.wal {
            out.push_str(&format!(
                "  \"wal\": {{\"replayed\": {}, \"replay_bound\": {}, \"daemon_commits\": {}, \"replay_bounded\": {}}},\n",
                self.replayed,
                self.replay_bound,
                self.daemon_commits,
                self.replay_bounded(),
            ));
        }
        out.push_str("  \"streams\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"stream_id\": {}, \"engine\": \"{}\", \"updates\": {}, \"fitness\": {}, \"snapshot_bytes\": {}, \"identical\": {}}}{}\n",
                c.stream_id,
                c.name,
                c.updates,
                jf(c.fitness),
                c.snapshot_bytes,
                c.identical,
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The fleet: every engine family plus the anomaly decorator, one
/// pooled stream each. Rank is kept small — the scenario is about state
/// fidelity, not fitting quality.
fn fleet(spec: &DatasetSpec) -> Vec<(u64, EngineSpec)> {
    let sns = |kind| {
        EngineSpec::sns(
            spec.base_dims,
            spec.window,
            spec.period,
            kind,
            &SnsConfig {
                rank: 4,
                theta: spec.theta,
                eta: spec.eta,
                init_scale: 1.0,
                seed: 0,
                precision: Precision::F64,
            },
        )
    };
    let baseline = |algo| EngineSpec::baseline(spec.base_dims, spec.window, spec.period, 4, algo);
    vec![
        (0, sns(AlgorithmKind::PlusRnd)),
        (1, sns(AlgorithmKind::PlusVec)),
        (2, baseline(sns_runtime::BaselineKind::AlsPeriodic { sweeps: 1 })),
        (3, baseline(sns_runtime::BaselineKind::OnlineScp)),
        (4, baseline(sns_runtime::BaselineKind::CpStream { decay: 0.99, iters: 2 })),
        (5, baseline(sns_runtime::BaselineKind::NeCpd { epochs: 1 })),
        (6, sns(AlgorithmKind::PlusRnd).with_anomaly(AnomalyConfig::default())),
    ]
}

/// Opens every fleet stream on `pool` and replays `tuples` through all
/// of them concurrently (one driver thread per stream).
fn replay_fleet(
    pool: &EnginePool,
    streams: &[(u64, EngineSpec)],
    tuples: &[StreamTuple],
    plan: &ReplayPlan,
) -> Result<Vec<sns_runtime::StreamSession>, SnsError> {
    let mut sessions = Vec::with_capacity(streams.len());
    for (id, spec) in streams {
        sessions.push(pool.open(*id, spec.clone())?);
    }
    drive_fleet(&mut sessions, tuples, plan)?;
    Ok(sessions)
}

/// Replays `tuples` through already-open sessions concurrently.
fn drive_fleet(
    sessions: &mut [sns_runtime::StreamSession],
    tuples: &[StreamTuple],
    plan: &ReplayPlan,
) -> Result<(), SnsError> {
    let results: Vec<Result<(), SnsError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter_mut()
            .map(|session| scope.spawn(move || replay(session, tuples, plan).map(|_| ())))
            .collect();
        handles.into_iter().map(|h| h.join().expect("replay thread panicked")).collect()
    });
    results.into_iter().collect()
}

/// Runs the scenario; see the module docs for the three phases.
///
/// # Errors
/// Any pool, replay, codec, or store error; a *non-identical* recovery
/// is not an error — it is reported per stream (and the caller exits
/// non-zero on [`RecoverReport::all_identical`] being false).
pub fn run_recover(cfg: &RecoverConfig) -> Result<RecoverReport, SnsError> {
    let spec = nytaxi_like();
    let trace = generate(&spec.generator(cfg.events, cfg.data_seed));
    let als = AlsOptions { max_iters: 8, tol: 1e-3, ..Default::default() };
    let full_plan = ReplayPlan::for_dataset(&spec, als.clone());
    let streams = fleet(&spec);
    let pool_config = |journal: Option<Arc<dyn BatchJournal>>| PoolConfig {
        shards: cfg.shards,
        base_seed: cfg.base_seed,
        queue_depth: 64,
        journal,
        ..Default::default()
    };

    // Phase 1: the uninterrupted reference. Snapshots are taken while
    // the sessions are still open (closing a session drops its slot).
    // In WAL mode the reference journals too (to a throwaway log), so
    // its snapshots carry the same `wal_seq` as the recovered run's —
    // byte-identity then covers the journal cursor as well.
    let reference_journal: Option<Arc<dyn BatchJournal>> = if cfg.wal {
        Some(Arc::new(WalSet::create(cfg.dir.join("wal-reference"))?) as _)
    } else {
        None
    };
    let reference_pool = EnginePool::new(pool_config(reference_journal));
    let sessions = replay_fleet(&reference_pool, &streams, &trace, &full_plan)?;
    let mut reference_bytes: HashMap<u64, Vec<u8>> = HashMap::new();
    for (id, snapshot) in reference_pool.checkpoint_all() {
        reference_bytes.insert(id, to_bytes(&snapshot?));
    }
    drop(sessions);
    reference_pool.join();

    let crash_at = trace.len() / 2;
    let store = CheckpointStore::create(&cfg.dir)?;
    let tail_plan = ReplayPlan {
        prefill_until: None,
        warm_start: None,
        bucket_ticks: full_plan.bucket_ticks,
        max_batch: full_plan.max_batch,
        advance_to: full_plan.advance_to,
    };
    let (recovered_pool, mut recovered, wal_stats) = if cfg.wal {
        recover_via_wal(cfg, &streams, &trace, crash_at, &full_plan, &store, &pool_config)?
    } else {
        // Phase 2: replay half the trace, checkpoint to disk, crash.
        let first_half_plan = ReplayPlan { advance_to: None, ..full_plan.clone() };
        let doomed_pool = EnginePool::new(pool_config(None));
        let sessions = replay_fleet(&doomed_pool, &streams, &trace[..crash_at], &first_half_plan)?;
        checkpoint_pool(&doomed_pool, &store)?;
        drop(sessions);
        drop(doomed_pool); // the crash: no clean close, the process state is gone

        // Phase 3: recover from disk into a brand-new pool.
        let recovered_pool = EnginePool::new(pool_config(None));
        let recovered = recover_pool(&recovered_pool, &store)?;
        (recovered_pool, recovered, WalPhaseStats::default())
    };
    drive_fleet(&mut recovered, &trace[crash_at..], &tail_plan)?;

    let mut cells = Vec::with_capacity(streams.len());
    for session in &mut recovered {
        let report = session.report()?;
        if let Some(e) = report.error {
            return Err(e);
        }
        let snapshot = session.snapshot()?;
        let bytes = to_bytes(&snapshot);
        let reference = reference_bytes
            .get(&report.stream_id)
            .ok_or(SnsError::StreamClosed { stream_id: report.stream_id })?;
        cells.push(RecoverCell {
            stream_id: report.stream_id,
            name: report.name,
            updates: report.updates_applied,
            fitness: report.fitness,
            snapshot_bytes: bytes.len(),
            identical: &bytes == reference,
        });
    }
    cells.sort_by_key(|c| c.stream_id);
    drop(recovered);
    recovered_pool.join();

    Ok(RecoverReport {
        dataset: spec.name.to_string(),
        events: trace.len(),
        crash_at,
        cells,
        manifest: store.manifest_path(),
        wal: cfg.wal,
        replayed: wal_stats.replayed,
        replay_bound: wal_stats.replay_bound,
        daemon_commits: wal_stats.daemon_commits,
    })
}

/// What the WAL phase measured (zeros in checkpoint-only mode).
#[derive(Debug, Default, Clone, Copy)]
struct WalPhaseStats {
    replayed: u64,
    replay_bound: u64,
    daemon_commits: u64,
}

/// The WAL-mode interrupted run: journal everything, let the background
/// daemon commit delta checkpoints during chunk 1, stop it, land chunk 2
/// only in the journal, crash, and recover via checkpoint + WAL tail.
#[allow(clippy::type_complexity)]
fn recover_via_wal(
    cfg: &RecoverConfig,
    streams: &[(u64, EngineSpec)],
    trace: &[StreamTuple],
    crash_at: usize,
    full_plan: &ReplayPlan,
    store: &CheckpointStore,
    pool_config: &dyn Fn(Option<Arc<dyn BatchJournal>>) -> PoolConfig,
) -> Result<(EnginePool, Vec<sns_runtime::StreamSession>, WalPhaseStats), SnsError> {
    let wal = Arc::new(WalSet::create(cfg.dir.join("wal"))?);
    let wait_err =
        |message: String| SnsError::Io { path: cfg.dir.join("wal").display().to_string(), message };

    // Chunk 1 replays with the daemon live; chunk 2 is journaled but
    // never checkpointed, so recovery *must* replay it from the WAL.
    let chunk1_end = crash_at * 4 / 5;
    let doomed_pool =
        Arc::new(EnginePool::new(pool_config(Some(Arc::clone(&wal) as Arc<dyn BatchJournal>))));
    let daemon = Checkpointer::start(
        Arc::clone(&doomed_pool),
        store.clone(),
        Arc::clone(&wal),
        CheckpointPolicy { min_batches: 8, poll: Duration::from_millis(10) },
    )?;
    let chunk1_plan = ReplayPlan { advance_to: None, ..full_plan.clone() };
    let mut sessions = replay_fleet(&doomed_pool, streams, &trace[..chunk1_end], &chunk1_plan)?;

    // Wait until the daemon has committed every stream at least once.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(e) = daemon.error() {
            return Err(e);
        }
        let covered = store.manifest().map(|m| m.len()).unwrap_or(0);
        if covered == streams.len() {
            break;
        }
        if Instant::now() > deadline {
            return Err(wait_err(format!(
                "daemon covered {covered}/{} streams within the deadline",
                streams.len()
            )));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let daemon_stats = daemon.stop();

    let chunk2_plan = ReplayPlan {
        prefill_until: None,
        warm_start: None,
        bucket_ticks: full_plan.bucket_ticks,
        max_batch: full_plan.max_batch,
        advance_to: None,
    };
    drive_fleet(&mut sessions, &trace[chunk1_end..crash_at], &chunk2_plan)?;
    drop(sessions);
    match Arc::try_unwrap(doomed_pool) {
        Ok(pool) => drop(pool), // the crash: no clean close
        Err(_) => return Err(wait_err("daemon still holds the doomed pool".to_string())),
    }
    if let Some(e) = wal.error() {
        return Err(e);
    }

    // Recovery: newest checkpoints + the bounded WAL tail, onto a fresh
    // pool that keeps journaling (the tail drive stays covered).
    let recovered_pool = EnginePool::new(pool_config(Some(Arc::clone(&wal) as _)));
    let (recovered, replayed) = recover_pool_wal(&recovered_pool, store, &wal)?;
    if let Some(e) = wal.error() {
        return Err(e);
    }
    // Every stream journaled its crash_at tuples plus one warm-start.
    let replay_bound = streams.len() as u64 * (crash_at as u64 + 1);
    Ok((
        recovered_pool,
        recovered,
        WalPhaseStats { replayed, replay_bound, daemon_commits: daemon_stats.commits },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_recover_finish_is_bitwise_identical() {
        let dir = std::env::temp_dir().join(format!("sns-recover-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_recover(&RecoverConfig {
            events: 3_000,
            shards: 3,
            base_seed: 0xbead,
            data_seed: 7,
            dir: dir.clone(),
            wal: false,
        })
        .unwrap();
        assert_eq!(report.cells.len(), 7, "every engine family plus the decorator");
        for c in &report.cells {
            assert!(c.identical, "stream {} ({}) diverged after recovery", c.stream_id, c.name);
            assert!(c.updates > 0, "stream {} applied no updates", c.stream_id);
            assert!(c.snapshot_bytes > 0);
        }
        assert!(report.all_identical());
        assert!(report.manifest.exists(), "manifest must stay on disk for CI artifacts");
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"sns-recover\""));
        assert!(json.contains("\"all_identical\": true"));
        assert!(json.contains("\"mode\": \"checkpoint\""));
        assert!(report.render().contains("identical"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_mode_recovers_bitwise_with_a_bounded_replay() {
        let dir = std::env::temp_dir().join(format!("sns-recover-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_recover(&RecoverConfig {
            events: 2_000,
            shards: 2,
            base_seed: 0xbead,
            data_seed: 7,
            dir: dir.clone(),
            wal: true,
        })
        .unwrap();
        assert_eq!(report.cells.len(), 7);
        for c in &report.cells {
            assert!(c.identical, "stream {} ({}) diverged after WAL recovery", c.stream_id, c.name);
        }
        assert!(report.replayed > 0, "chunk 2 must have left a journal tail");
        assert!(
            report.replayed < report.replay_bound,
            "replay must be bounded: {} of {}",
            report.replayed,
            report.replay_bound
        );
        assert!(report.replay_bounded());
        assert!(report.daemon_commits >= 1, "the background daemon never committed");
        let json = report.to_json();
        assert!(json.contains("\"mode\": \"wal\""));
        assert!(json.contains("\"replay_bounded\": true"));
        assert!(report.render().contains("bounded"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
