//! Fleet: the shards × streams aggregate-throughput grid behind
//! `bench fleet` — the wave-3 raw-speed scenario.
//!
//! One shared synthetic trace is driven through a fleet of identical
//! SNS⁺_RND tenants at each worker-shard count in
//! [`FleetConfig::shard_grid`]. Every stream pipelines its batches with
//! [`StreamSession::try_ingest_batch`] (falling back to the blocking
//! path under backpressure), so shard workers see deep queues and the
//! coalescing drain does real work. Per cell the report records:
//!
//! - **aggregate throughput** — factor updates across the whole fleet
//!   over the wall-clock of the measured ingest phase (prefill and warm
//!   start run outside the clock);
//! - **worst p99 ingest latency** — max over the per-stream
//!   enqueue→ack histograms the pool already keeps;
//! - **coalescing factor** — ingest batches submitted over ingest
//!   groups drained (`1.0` means no coalescing ever happened).
//!
//! The cell fleet runs with [`QuarantinePolicy::Disabled`]: this is the
//! raw-speed configuration — no pre-batch snapshots on the hot path.
//!
//! Two acceptance checks ride on the report (enforced by the `bench`
//! binary with `--enforce-floor`):
//!
//! - the best cell's aggregate throughput must clear
//!   [`AGGREGATE_FLOOR_EVENTS_PER_SEC`] — always enforced;
//! - at the widest shard count the aggregate must reach
//!   [`SCALING_REQUIRED`] × the single-shard cell — enforced only when
//!   the host exposes at least [`SCALING_MIN_CORES`] cores (a
//!   single-core box cannot scale by adding worker threads; there the
//!   check is advisory and the JSON says `"enforced": false`).

use sns_core::als::AlsOptions;
use sns_core::config::{AlgorithmKind, SnsConfig};
use sns_data::{generate, GeneratorConfig};
use sns_runtime::{EnginePool, EngineSpec, PoolConfig, QuarantinePolicy, SnsError, StreamSession};
use sns_stream::StreamTuple;
use std::time::Instant;

/// Small tenant tensors: the fleet is about pipeline throughput, not
/// fitting quality, so the per-event kernel is kept cheap enough that
/// queueing and coalescing dominate the profile.
const BASE_DIMS: [usize; 2] = [20, 16];
const W: usize = 5;
const T: u64 = 100;

/// Checked-in floor for the best cell's aggregate pooled throughput
/// (factor updates per second across the whole fleet). Matches the
/// serial 60k floor: the pooled pipeline may not cost more than the
/// bare engine loop at fleet scale.
pub const AGGREGATE_FLOOR_EVENTS_PER_SEC: f64 = 60_000.0;

/// Required aggregate speedup of the widest cell over the single-shard
/// cell when the host has enough cores for the workers to spread.
pub const SCALING_REQUIRED: f64 = 2.0;

/// Minimum `available_parallelism` for the scaling check to be
/// enforceable (the widest default cell runs 4 worker shards).
pub const SCALING_MIN_CORES: usize = 4;

/// How to size the fleet grid.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker-shard counts to sweep (one report cell each).
    pub shard_grid: Vec<usize>,
    /// Concurrent tenant streams per cell.
    pub streams: usize,
    /// Events in the shared trace (every stream ingests all of it).
    pub events: usize,
    /// Tuples per submitted batch.
    pub batch: usize,
    /// Shard command-queue bound.
    pub queue_depth: usize,
    /// Pool base seed (per-stream engine seeds derive from it).
    pub base_seed: u64,
    /// Shared-trace generator seed.
    pub data_seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shard_grid: vec![1, 2, 4],
            streams: 8,
            events: 24_000,
            batch: 256,
            queue_depth: 64,
            base_seed: 0xf1ee,
            data_seed: 42,
        }
    }
}

/// One (shard count) cell of the grid.
#[derive(Debug, Clone)]
pub struct FleetCell {
    /// Worker shards in this cell's pool.
    pub shards: usize,
    /// Streams driven.
    pub streams: usize,
    /// Factor updates acknowledged across the fleet.
    pub updates: u64,
    /// Wall-clock of the measured ingest phase.
    pub seconds: f64,
    /// `updates / seconds`.
    pub aggregate_events_per_sec: f64,
    /// Worst per-stream p99 enqueue→ack latency (µs).
    pub p99_max_us: f64,
    /// Ingest batches submitted per coalesced group drained (≥ 1.0;
    /// exactly 1.0 means the workers never found a second queued batch).
    pub coalescing_factor: f64,
}

/// A completed fleet sweep.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One cell per entry of [`FleetConfig::shard_grid`], in order.
    pub cells: Vec<FleetCell>,
    /// Host `available_parallelism` (0 if unknown).
    pub cores: usize,
    /// Events in the shared trace that fell after the prefill horizon.
    pub live_events: usize,
}

impl FleetReport {
    /// Best aggregate throughput across the grid.
    pub fn best_aggregate(&self) -> f64 {
        self.cells.iter().map(|c| c.aggregate_events_per_sec).fold(0.0, f64::max)
    }

    /// True when the best cell clears the absolute aggregate floor.
    pub fn floor_pass(&self) -> bool {
        self.best_aggregate() >= AGGREGATE_FLOOR_EVENTS_PER_SEC
    }

    /// Widest-cell aggregate over single-shard aggregate, when both
    /// cells exist and the single-shard cell did work.
    pub fn scaling_ratio(&self) -> Option<f64> {
        let base = self.cells.iter().find(|c| c.shards == 1)?;
        let top = self.cells.iter().max_by_key(|c| c.shards)?;
        if top.shards == 1 || base.aggregate_events_per_sec <= 0.0 {
            return None;
        }
        Some(top.aggregate_events_per_sec / base.aggregate_events_per_sec)
    }

    /// True when the host has enough cores for the scaling check to
    /// mean anything.
    pub fn scaling_enforceable(&self) -> bool {
        self.cores >= SCALING_MIN_CORES
    }

    /// The scaling verdict itself (independent of enforceability).
    pub fn scaling_pass(&self) -> bool {
        self.scaling_ratio().is_some_and(|r| r >= SCALING_REQUIRED)
    }

    /// Renders the grid as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!(
                "  shards={:<2} {:>10.0} events/s aggregate  p99 {:>7.1}us  coalescing {:.2}x  ({} updates in {:.3}s)\n",
                c.shards,
                c.aggregate_events_per_sec,
                c.p99_max_us,
                c.coalescing_factor,
                c.updates,
                c.seconds,
            ));
        }
        match self.scaling_ratio() {
            Some(r) => out.push_str(&format!(
                "  scaling: {:.2}x at widest vs 1 shard (required {:.1}x, {} on {} core(s))\n",
                r,
                SCALING_REQUIRED,
                if self.scaling_enforceable() { "enforced" } else { "advisory" },
                self.cores,
            )),
            None => out.push_str("  scaling: n/a (grid has no 1-shard baseline)\n"),
        }
        out
    }

    /// The `BENCH_pr10.json` body (schema in the README).
    pub fn to_json(&self, cfg: &FleetConfig, mode: &str) -> String {
        let f = |x: f64| {
            if x.is_finite() {
                format!("{x:.6}")
            } else {
                "null".to_string()
            }
        };
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"sns-fleet\",\n");
        json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        json.push_str(&format!(
            "  \"config\": {{\"base_dims\": {:?}, \"window\": {}, \"period\": {}, \"streams\": {}, \"events\": {}, \"live_events\": {}, \"batch\": {}, \"queue_depth\": {}, \"quarantine\": \"disabled\", \"cores\": {}}},\n",
            BASE_DIMS, W, T, cfg.streams, cfg.events, self.live_events, cfg.batch,
            cfg.queue_depth, self.cores,
        ));
        json.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"shards\": {}, \"streams\": {}, \"updates\": {}, \"seconds\": {}, \"aggregate_events_per_sec\": {}, \"p99_max_us\": {}, \"coalescing_factor\": {}}}{}\n",
                c.shards,
                c.streams,
                c.updates,
                f(c.seconds),
                f(c.aggregate_events_per_sec),
                f(c.p99_max_us),
                f(c.coalescing_factor),
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!(
            "  \"floor\": {{\"aggregate_events_per_sec\": {}, \"measured\": {}, \"pass\": {}}},\n",
            f(AGGREGATE_FLOOR_EVENTS_PER_SEC),
            f(self.best_aggregate()),
            self.floor_pass(),
        ));
        json.push_str(&format!(
            "  \"scaling\": {{\"required\": {}, \"ratio\": {}, \"min_cores\": {}, \"cores\": {}, \"enforced\": {}, \"pass\": {}}}\n",
            f(SCALING_REQUIRED),
            self.scaling_ratio().map_or_else(|| "null".to_string(), f),
            SCALING_MIN_CORES,
            self.cores,
            self.scaling_enforceable(),
            self.scaling_pass(),
        ));
        json.push_str("}\n");
        json
    }
}

/// The one shared trace every stream ingests.
fn shared_trace(cfg: &FleetConfig) -> Vec<StreamTuple> {
    generate(&GeneratorConfig {
        base_dims: BASE_DIMS.to_vec(),
        n_components: 3,
        events: cfg.events,
        duration: 10 * W as u64 * T,
        zipf_exponent: 1.2,
        noise_fraction: 0.1,
        day_ticks: 50,
        seed: cfg.data_seed,
        ..Default::default()
    })
}

/// Index of the first live (post-initialization) tuple.
fn prefill_cut(trace: &[StreamTuple]) -> usize {
    trace.partition_point(|t| t.time <= W as u64 * T)
}

fn tenant_spec() -> EngineSpec {
    EngineSpec::sns(
        &BASE_DIMS,
        W,
        T,
        AlgorithmKind::PlusRnd,
        &SnsConfig { rank: 5, theta: 20, ..Default::default() },
    )
}

fn als_opts() -> AlsOptions {
    AlsOptions { max_iters: 4, tol: 1e-3, ..Default::default() }
}

/// Drives one stream's live region pipelined; returns the fleet-side
/// update count for this stream once every receipt is in.
fn drive_pipelined(
    session: &mut StreamSession,
    live: &[StreamTuple],
    batch: usize,
) -> Result<u64, SnsError> {
    let mut updates = 0u64;
    for chunk in live.chunks(batch) {
        match session.try_ingest_batch(chunk) {
            Ok(_ticket) => {}
            Err(SnsError::Backpressure { .. }) => {
                // Free a slot if we own one, then shed this chunk to the
                // blocking path (the queue may be full of *other*
                // streams' commands, in which case we own nothing).
                if let Some(receipt) = session.recv_receipt() {
                    updates += receipt?.updates;
                }
                updates += session.ingest_batch(chunk)?.updates;
            }
            Err(e) => return Err(e),
        }
    }
    while let Some(receipt) = session.recv_receipt() {
        updates += receipt?.updates;
    }
    Ok(updates)
}

/// Runs one cell of the grid: a fresh pool at `shards`, the whole fleet
/// prefilled and warmed outside the clock, then the measured pipelined
/// ingest of the shared live region.
fn run_cell(
    cfg: &FleetConfig,
    shards: usize,
    trace: &[StreamTuple],
) -> Result<FleetCell, SnsError> {
    let cut = prefill_cut(trace);
    let live = &trace[cut..];
    let pool = EnginePool::new(PoolConfig {
        shards,
        base_seed: cfg.base_seed,
        queue_depth: cfg.queue_depth,
        bus_capacity: 1 << 12,
        quarantine: QuarantinePolicy::Disabled,
        ..Default::default()
    });
    let ids: Vec<u64> = (0..cfg.streams as u64).collect();
    let mut sessions: Vec<StreamSession> = Vec::with_capacity(ids.len());
    for &id in &ids {
        sessions.push(pool.open(id, tenant_spec())?);
    }

    // Prefill + warm start outside the clock.
    let warm: Vec<Result<(), SnsError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter_mut()
            .map(|session| {
                scope.spawn(move || -> Result<(), SnsError> {
                    for chunk in trace[..cut].chunks(cfg.batch) {
                        let _ = session.prefill_batch(chunk)?;
                    }
                    let _ = session.warm_start(&als_opts())?;
                    Ok(())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("prefill thread panicked")).collect()
    });
    warm.into_iter().collect::<Result<Vec<()>, SnsError>>()?;

    // Measured phase: every stream pipelines the live region.
    let start = Instant::now();
    let driven: Vec<Result<u64, SnsError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter_mut()
            .map(|session| scope.spawn(move || drive_pipelined(session, live, cfg.batch)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver thread panicked")).collect()
    });
    let seconds = start.elapsed().as_secs_f64();
    let updates =
        driven.into_iter().collect::<Result<Vec<u64>, SnsError>>()?.into_iter().sum::<u64>();

    let metrics = pool.ops().metrics();
    let mut p99_max_us = 0.0f64;
    for &id in &ids {
        let snapshot = metrics.stream(id).latency.snapshot();
        if snapshot.p99_us.is_finite() {
            p99_max_us = p99_max_us.max(snapshot.p99_us);
        }
    }
    // Exact batch count is known (prefill ran before any pipelining, so
    // every coalesced group the workers formed is an ingest group).
    let batches_per_stream = live.len().div_ceil(cfg.batch);
    let submitted = (batches_per_stream * cfg.streams) as u64;
    let groups: u64 = (0..shards)
        .map(|s| metrics.shard(s).ingest_groups.load(std::sync::atomic::Ordering::Relaxed))
        .sum();
    let coalescing_factor = if groups > 0 { submitted as f64 / groups as f64 } else { f64::NAN };

    drop(sessions);
    pool.join();
    Ok(FleetCell {
        shards,
        streams: cfg.streams,
        updates,
        seconds,
        aggregate_events_per_sec: updates as f64 / seconds.max(1e-9),
        p99_max_us,
        coalescing_factor,
    })
}

/// Runs the full grid; see the module docs for the cell protocol.
///
/// # Errors
/// Any pool or engine error on any stream — the fleet runs with
/// quarantine disabled and an unpoisoned trace, so every error is a
/// scenario bug rather than an acceptance shortfall.
pub fn run_fleet(cfg: &FleetConfig) -> Result<FleetReport, SnsError> {
    let trace = shared_trace(cfg);
    let live_events = trace.len() - prefill_cut(&trace);
    let mut cells = Vec::with_capacity(cfg.shard_grid.len());
    for &shards in &cfg.shard_grid {
        cells.push(run_cell(cfg, shards.max(1), &trace)?);
    }
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    Ok(FleetReport { cells, cores, live_events })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_grid_reports_throughput_latency_and_coalescing() {
        let cfg = FleetConfig {
            shard_grid: vec![1, 2],
            streams: 4,
            events: 2_000,
            batch: 64,
            ..Default::default()
        };
        let report = run_fleet(&cfg).unwrap();
        assert_eq!(report.cells.len(), 2);
        assert!(report.live_events > 0);
        for cell in &report.cells {
            assert_eq!(cell.streams, 4);
            assert!(cell.updates > 0, "cell did no work: {cell:?}");
            assert!(cell.aggregate_events_per_sec > 0.0);
            assert!(cell.p99_max_us.is_finite() && cell.p99_max_us > 0.0);
            assert!(cell.coalescing_factor >= 1.0, "groups cannot outnumber batches: {cell:?}");
        }
        assert!(report.scaling_ratio().is_some());
        let json = report.to_json(&cfg, "smoke");
        for key in ["\"sns-fleet\"", "\"cells\"", "\"floor\"", "\"scaling\"", "\"enforced\""] {
            assert!(json.contains(key), "json missing {key}:\n{json}");
        }
    }
}
