//! Figure 4 — relative fitness over time, all methods × 4 datasets.
//!
//! Protocol: Table III defaults, ALS init on the first window, events over
//! `5·W·T`, relative fitness (method / batch-ALS-on-same-window) sampled
//! at checkpoints. The paper's observations here: unclipped SNS_VEC /
//! SNS_RND can collapse (Obs. 3), the stable variants stay within 72–100%
//! of the best baseline (Obs. 4).

use crate::method::Method;
use crate::report::{banner, f, observation, Table};
use crate::runner::{run_method, ExperimentParams, RunConfig, RunResult};
use sns_data::{all_datasets, generate, DatasetSpec};

/// All lineup results for one dataset.
pub struct DatasetRuns {
    /// Which dataset.
    pub spec: DatasetSpec,
    /// One result per lineup method.
    pub results: Vec<RunResult>,
}

/// Runs the Fig. 4/5 lineup over all four datasets (shared by both
/// figures; `run_all` collects once and renders twice).
pub fn collect(scale: f64) -> Vec<DatasetRuns> {
    let mut out = Vec::new();
    for spec in all_datasets() {
        let events = ((spec.default_events as f64 * scale) as usize).max(1_500);
        let stream = generate(&spec.generator(events, 0xf4f5));
        let params = ExperimentParams::from_spec(&spec);
        let mut results = Vec::new();
        for method in Method::fig45_lineup() {
            // SNS_MAT sweeps the whole window per event; cap its measured
            // tuples exactly like the paper caps its scalability runs.
            let cap = match method {
                Method::Sns(sns_core::config::AlgorithmKind::Mat) => {
                    Some(((400.0 * scale) as usize).max(120))
                }
                _ => None,
            };
            let cfg = RunConfig { checkpoints: 8, max_measured_tuples: cap, ..Default::default() };
            results.push(run_method(&params, &stream, method, &cfg));
        }
        out.push(DatasetRuns { spec, results });
    }
    out
}

/// Renders the Fig. 4 tables from collected runs.
pub fn render(runs: &[DatasetRuns]) -> String {
    let mut out = banner("Fig 4 — relative fitness over time (per dataset)");
    for dr in runs {
        out.push_str(&format!("\n--- {} ---\n", dr.spec.name));
        let mut header: Vec<String> = vec!["Method".into()];
        let n_checks = dr.results.iter().map(|r| r.series.len()).max().unwrap_or(0);
        for i in 0..n_checks {
            header.push(format!("t{}", i + 1));
        }
        header.push("avg".into());
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&header_refs);
        for r in &dr.results {
            let mut cells = vec![r.method.clone()];
            for i in 0..n_checks {
                cells.push(match r.series.get(i) {
                    Some(c) => f(c.relative()),
                    None => "-".into(),
                });
            }
            cells.push(if r.diverged {
                format!("{} (diverged)", f(r.avg_relative_fitness))
            } else {
                f(r.avg_relative_fitness)
            });
            t.row(cells);
        }
        out.push_str(&t.render());
    }

    // Observations 3 & 4.
    let mut stable_ok = true;
    let mut any_unstable_collapse = false;
    for dr in runs {
        let best_baseline = dr
            .results
            .iter()
            .filter(|r| !r.method.starts_with("SNS"))
            .map(|r| r.avg_relative_fitness)
            .fold(f64::NEG_INFINITY, f64::max);
        for r in &dr.results {
            match r.method.as_str() {
                "SNS_MAT" | "SNS+_VEC" | "SNS+_RND"
                    if r.avg_relative_fitness < 0.5 * best_baseline.max(0.1) =>
                {
                    stable_ok = false;
                }
                "SNS_VEC" | "SNS_RND" if r.diverged || !r.avg_relative_fitness.is_finite() => {
                    any_unstable_collapse = true;
                }
                _ => {}
            }
        }
    }
    out.push('\n');
    out.push_str(&observation(
        "3",
        "clipping keeps SNS+ variants finite everywhere; unclipped variants may collapse",
        stable_ok,
    ));
    out.push('\n');
    out.push_str(&format!(
        "        (unclipped collapse observed in this run: {any_unstable_collapse} — dataset-dependent, as in the paper)\n",
    ));
    out.push_str(&observation(
        "4",
        "stable SNS variants reach a comparable fraction of the best baseline's fitness",
        stable_ok,
    ));
    out.push('\n');
    out
}

/// Full Fig. 4 experiment.
pub fn run(scale: f64) -> String {
    render(&collect(scale))
}
