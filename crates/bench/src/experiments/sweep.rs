//! Pooled multi-rank sweep: one `EnginePool` stream session per
//! `(rank, method)` cell, all replaying the same trace concurrently.
//!
//! This is the scenario that turns the repo's primitives into a serving
//! workload: a model-selection sweep (which rank? which updater?) runs as
//! many *pooled tenants* sharing the worker shards, each driven by the
//! deterministic trace-replay driver ([`mod@sns_data::replay`]), and the
//! result is a machine-readable report (`SWEEP_*.json`, schema in the
//! README) next to the throughput bench's `BENCH_*.json`.
//!
//! Determinism: every cell's engine is built from its declarative spec
//! with the pool's derived per-stream seed, and replay batching is a pure
//! function of the trace — rerunning a sweep reproduces every cell
//! bitwise.

use crate::method::Method;
use crate::report::{f, Table};
use crate::runner::ExperimentParams;
use sns_core::als::AlsOptions;
use sns_data::replay::{read_trace, replay, ReplayPlan};
use sns_data::{generate, nytaxi_like, DatasetSpec};
use sns_runtime::{EnginePool, PoolConfig, StreamSession};
use sns_stream::{SnsError, StreamTuple};
use std::path::PathBuf;
use std::time::Instant;

/// A per-cell trace override: the named `(rank, method)` cell replays
/// the CSV trace at `path` instead of the shared synthetic trace —
/// opening dataset×rank sweeps where different cells evaluate different
/// workloads side by side. The trace must fit the sweep's tensor-window
/// geometry (coordinate bounds and chronological order), like any
/// replayed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOverride {
    /// The cell's CP rank.
    pub rank: usize,
    /// The cell's method display name (e.g. `SNS+_RND`, `OnlineSCP`).
    pub method: String,
    /// CSV trace path (see `sns-data::csvio` for the format).
    pub path: PathBuf,
}

/// What to sweep and how to size the pool.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// CP ranks to evaluate (one pooled stream per rank × method).
    pub ranks: Vec<usize>,
    /// Methods to evaluate.
    pub methods: Vec<Method>,
    /// Events generated for the shared trace.
    pub events: usize,
    /// Worker shards of the pool.
    pub shards: usize,
    /// Pool base seed (cells derive per-stream seeds from it).
    pub base_seed: u64,
    /// Trace generator seed.
    pub data_seed: u64,
    /// Per-cell trace overrides (`--trace-for rank=R,method=M,path=P`);
    /// cells without an override replay the shared synthetic trace.
    pub trace_overrides: Vec<TraceOverride>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            ranks: vec![5, 10, 20],
            methods: vec![
                Method::Sns(sns_core::config::AlgorithmKind::PlusVec),
                Method::Sns(sns_core::config::AlgorithmKind::PlusRnd),
                Method::OnlineScp,
            ],
            events: 20_000,
            shards: 4,
            base_seed: 0x5eed,
            data_seed: 42,
            trace_overrides: Vec::new(),
        }
    }
}

/// One `(rank, method)` cell of the sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Pooled stream id the cell ran as.
    pub stream_id: u64,
    /// Shard that served the cell.
    pub shard: usize,
    /// CP rank `R`.
    pub rank: usize,
    /// Method display name.
    pub method: String,
    /// Final fitness reported by the stream.
    pub fitness: f64,
    /// Factor updates applied.
    pub updates: u64,
    /// Model parameter count (`R · Σ N_m`).
    pub parameters: usize,
    /// Tuples replayed live (post-prefill).
    pub tuples: usize,
    /// Wall-clock seconds of this cell's replay (cells overlap).
    pub seconds: f64,
    /// Whether the model diverged.
    pub diverged: bool,
    /// Which trace the cell replayed: `"shared"` or the override path.
    pub trace: String,
    /// First error the cell hit, if any (rendered; `None` on success).
    pub error: Option<String>,
}

/// A completed sweep over one trace.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Dataset the trace mirrors.
    pub dataset: String,
    /// Events in the trace.
    pub events: usize,
    /// Shards the pool ran with.
    pub shards: usize,
    /// All cells, in (rank-major, method-minor) order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Renders the sweep as an aligned text table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "rank", "method", "shard", "fitness", "updates", "params", "sec", "trace", "status",
        ]);
        for c in &self.cells {
            t.row(vec![
                c.rank.to_string(),
                c.method.clone(),
                c.shard.to_string(),
                f(c.fitness),
                c.updates.to_string(),
                c.parameters.to_string(),
                f(c.seconds),
                c.trace.clone(),
                match (&c.error, c.diverged) {
                    (Some(e), _) => format!("error: {e}"),
                    (None, true) => "DIVERGED".to_string(),
                    (None, false) => "ok".to_string(),
                },
            ]);
        }
        t.render()
    }

    /// Serializes the machine-readable report (schema in the README).
    pub fn to_json(&self) -> String {
        fn jf(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.6}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"sns-sweep\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"dataset\": \"{}\", \"synthetic\": true, \"events\": {}, \"shards\": {}, \"cells\": {}}},\n",
            self.dataset,
            self.events,
            self.shards,
            self.cells.len(),
        ));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"stream_id\": {}, \"shard\": {}, \"rank\": {}, \"method\": \"{}\", \"fitness\": {}, \"updates\": {}, \"parameters\": {}, \"tuples\": {}, \"seconds\": {}, \"diverged\": {}, \"trace\": {}, \"error\": {}}}{}\n",
                c.stream_id,
                c.shard,
                c.rank,
                c.method,
                jf(c.fitness),
                c.updates,
                c.parameters,
                c.tuples,
                jf(c.seconds),
                c.diverged,
                crate::report::json_str(&c.trace),
                c.error.as_ref().map_or("null".to_string(), |e| crate::report::json_str(e)),
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The best (rank, method) cell by final fitness among error-free,
    /// non-diverged cells.
    pub fn best(&self) -> Option<&SweepCell> {
        self.cells
            .iter()
            .filter(|c| c.error.is_none() && !c.diverged && c.fitness.is_finite())
            .max_by(|a, b| a.fitness.partial_cmp(&b.fitness).expect("finite fitness"))
    }
}

/// Runs the sweep: opens one pooled session per `(rank, method)` cell and
/// replays the shared trace through all of them concurrently (one driver
/// thread per cell; the pool's shards bound actual parallelism and
/// per-shard queues apply flow control).
pub fn run_sweep(cfg: &SweepConfig) -> SweepReport {
    let spec: DatasetSpec = nytaxi_like();
    let stream = generate(&spec.generator(cfg.events, cfg.data_seed));
    let als = AlsOptions { max_iters: 10, tol: 1e-3, ..Default::default() };
    let plan = ReplayPlan::for_dataset(&spec, als);

    // Load each override trace once; cells reference them by index so
    // several cells can share one file.
    let mut override_traces: Vec<(String, Result<Vec<StreamTuple>, SnsError>)> = Vec::new();
    let mut override_of = |rank: usize, method: &str| -> Option<usize> {
        let ov = cfg.trace_overrides.iter().find(|o| o.rank == rank && o.method == method)?;
        let key = ov.path.display().to_string();
        if let Some(i) = override_traces.iter().position(|(k, _)| *k == key) {
            return Some(i);
        }
        let loaded = read_trace(&ov.path)
            .map_err(|e| SnsError::Io { path: key.clone(), message: e.to_string() });
        override_traces.push((key, loaded));
        Some(override_traces.len() - 1)
    };

    let pool = EnginePool::new(PoolConfig {
        shards: cfg.shards,
        base_seed: cfg.base_seed,
        queue_depth: 64,
        ..Default::default()
    });

    // Open every cell first (cheap; engines build on their workers), then
    // drive all replays concurrently.
    struct OpenCell {
        stream_id: u64,
        rank: usize,
        method: Method,
        trace_idx: Option<usize>,
        session: Option<StreamSession>,
        open_error: Option<String>,
    }
    let mut open_cells = Vec::new();
    let mut next_id = 0u64;
    for &rank in &cfg.ranks {
        for &method in &cfg.methods {
            let params = ExperimentParams {
                base_dims: spec.base_dims.to_vec(),
                window: spec.window,
                period: spec.period,
                rank,
                theta: spec.theta,
                eta: spec.eta,
            };
            let stream_id = next_id;
            next_id += 1;
            let (session, open_error) = match pool.open(stream_id, method.spec(&params)) {
                Ok(s) => (Some(s), None),
                Err(e) => (None, Some(e.to_string())),
            };
            let trace_idx = override_of(rank, &method.name());
            open_cells.push(OpenCell { stream_id, rank, method, trace_idx, session, open_error });
        }
    }
    let override_traces = &override_traces;

    let cells: Vec<SweepCell> = std::thread::scope(|scope| {
        let handles: Vec<_> = open_cells
            .into_iter()
            .map(|cell| {
                let stream = &stream;
                let plan = &plan;
                scope.spawn(move || {
                    let OpenCell { stream_id, rank, method, trace_idx, session, open_error } = cell;
                    let (trace_name, trace): (String, Option<&[StreamTuple]>) = match trace_idx {
                        None => ("shared".to_string(), Some(stream)),
                        Some(i) => {
                            let (name, loaded) = &override_traces[i];
                            match loaded {
                                Ok(t) => (name.clone(), Some(t)),
                                Err(_) => (name.clone(), None),
                            }
                        }
                    };
                    let mut out = SweepCell {
                        stream_id,
                        shard: 0,
                        rank,
                        method: method.name(),
                        fitness: f64::NAN,
                        updates: 0,
                        parameters: 0,
                        tuples: 0,
                        seconds: 0.0,
                        diverged: false,
                        trace: trace_name,
                        error: open_error,
                    };
                    if out.error.is_none() {
                        if let (Some(i), None) = (trace_idx, trace) {
                            out.error = override_traces[i].1.as_ref().err().map(|e| e.to_string());
                        }
                    }
                    let Some(mut session) = session else { return out };
                    out.shard = session.shard();
                    if let Some(trace) = trace {
                        let start = Instant::now();
                        match replay(&mut session, trace, plan) {
                            Ok(r) => {
                                out.tuples = r.ingested;
                                out.seconds = start.elapsed().as_secs_f64();
                            }
                            Err(e) => out.error = Some(e.to_string()),
                        }
                    }
                    match session.report() {
                        Ok(r) => {
                            out.fitness = r.fitness;
                            out.updates = r.updates_applied;
                            out.parameters = r.num_parameters;
                            out.diverged = r.diverged;
                            if out.error.is_none() {
                                out.error = r.error.map(|e| e.to_string());
                            }
                        }
                        Err(e) => {
                            out.error.get_or_insert(e.to_string());
                        }
                    }
                    session.close();
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep cell thread panicked")).collect()
    });

    pool.join();
    SweepReport { dataset: spec.name.to_string(), events: cfg.events, shards: cfg.shards, cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::AlgorithmKind;

    fn tiny() -> SweepConfig {
        SweepConfig {
            ranks: vec![2, 4],
            methods: vec![Method::Sns(AlgorithmKind::PlusRnd), Method::OnlineScp],
            events: 2_500,
            shards: 3,
            base_seed: 7,
            data_seed: 11,
            trace_overrides: Vec::new(),
        }
    }

    #[test]
    fn sweep_runs_every_cell_through_the_pool() {
        let report = run_sweep(&tiny());
        assert_eq!(report.cells.len(), 4);
        for c in &report.cells {
            assert_eq!(c.error, None, "cell R={} {} errored", c.rank, c.method);
            assert!(c.updates > 0, "cell R={} {} applied no updates", c.rank, c.method);
            assert!(c.shard < 3);
        }
        // Parameter counts scale with rank within one method.
        let params_of = |rank: usize, m: &str| {
            report.cells.iter().find(|c| c.rank == rank && c.method == m).unwrap().parameters
        };
        assert_eq!(2 * params_of(2, "SNS+_RND"), params_of(4, "SNS+_RND"));
        assert!(report.best().is_some());
    }

    #[test]
    fn sweep_is_deterministic_per_config() {
        let a = run_sweep(&tiny());
        let b = run_sweep(&tiny());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.fitness.to_bits(), cb.fitness.to_bits(), "{} R={}", ca.method, ca.rank);
            assert_eq!(ca.updates, cb.updates);
        }
    }

    #[test]
    fn json_and_table_render() {
        let report = run_sweep(&SweepConfig {
            ranks: vec![2],
            methods: vec![Method::Sns(AlgorithmKind::PlusVec)],
            events: 1_200,
            shards: 2,
            base_seed: 1,
            data_seed: 2,
            trace_overrides: Vec::new(),
        });
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"sns-sweep\""));
        assert!(json.contains("\"rank\": 2"));
        assert!(json.contains("\"method\": \"SNS+_VEC\""));
        assert!(json.contains("\"trace\": \"shared\""));
        let table = report.render();
        assert!(table.contains("SNS+_VEC"));
    }

    #[test]
    fn trace_override_routes_one_cell_to_its_own_trace() {
        // Write a tiny trace whose length differs from the shared one.
        let spec = nytaxi_like();
        let small = generate(&spec.generator(400, 99));
        let path =
            std::env::temp_dir().join(format!("sns-sweep-override-{}.csv", std::process::id()));
        sns_data::csvio::write_stream(std::fs::File::create(&path).unwrap(), &small).unwrap();

        let mut cfg = tiny();
        cfg.trace_overrides =
            vec![TraceOverride { rank: 2, method: "SNS+_RND".to_string(), path: path.clone() }];
        let report = run_sweep(&cfg);
        std::fs::remove_file(&path).ok();

        let overridden = report
            .cells
            .iter()
            .find(|c| c.rank == 2 && c.method == "SNS+_RND")
            .expect("overridden cell present");
        assert_eq!(overridden.error, None, "{:?}", overridden.error);
        assert_eq!(overridden.trace, path.display().to_string());
        let shared = report
            .cells
            .iter()
            .find(|c| c.rank == 4 && c.method == "SNS+_RND")
            .expect("shared cell present");
        assert_eq!(shared.trace, "shared");
        // The override actually changed the workload the cell saw.
        assert!(overridden.tuples < shared.tuples);
        assert!(report.to_json().contains("sns-sweep-override"));
    }

    #[test]
    fn missing_override_trace_is_a_typed_cell_error_not_a_crash() {
        let mut cfg = tiny();
        cfg.trace_overrides = vec![TraceOverride {
            rank: 2,
            method: "OnlineSCP".to_string(),
            path: PathBuf::from("/nonexistent/sns-trace.csv"),
        }];
        let report = run_sweep(&cfg);
        let broken = report
            .cells
            .iter()
            .find(|c| c.rank == 2 && c.method == "OnlineSCP")
            .expect("cell present");
        assert!(broken.error.is_some(), "missing trace must surface as a cell error");
        // Every other cell is unaffected.
        for c in report.cells.iter().filter(|c| !(c.rank == 2 && c.method == "OnlineSCP")) {
            assert_eq!(c.error, None, "cell R={} {}", c.rank, c.method);
        }
    }
}
