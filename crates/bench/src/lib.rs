//! # sns-bench
//!
//! Experiment harnesses reproducing every table and figure of the
//! SliceNStitch paper (see `DESIGN.md` §5 for the full index), plus
//! Criterion micro-benchmarks of the hot kernels.
//!
//! Each figure/table has a binary (`cargo run -p sns-bench --release
//! --bin figN_…`) that prints the measured rows next to the paper's
//! qualitative expectations. `run_all` executes everything and is what
//! `EXPERIMENTS.md` records.
//!
//! All experiments accept `--scale <f64>` (default 1.0) to shrink or
//! grow the event counts, and `--quick` (= `--scale 0.15`) for smoke
//! runs.

pub mod experiments;
pub mod method;
pub mod report;
pub mod runner;

pub use method::Method;
pub use runner::{RunConfig, RunResult};

/// Parses `--scale`/`--quick` from command-line arguments.
pub fn parse_scale(args: &[String]) -> f64 {
    let mut scale = 1.0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = 0.15,
            "--scale" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                    scale = v;
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    scale.clamp(0.01, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale(&s(&[])), 1.0);
        assert_eq!(parse_scale(&s(&["--quick"])), 0.15);
        assert_eq!(parse_scale(&s(&["--scale", "0.5"])), 0.5);
        assert_eq!(parse_scale(&s(&["--scale", "bogus"])), 1.0);
        assert_eq!(parse_scale(&s(&["--scale", "1000"])), 100.0);
    }
}
