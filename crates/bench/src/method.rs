//! Unified method selector: the five SliceNStitch variants plus the four
//! conventional baselines.

use crate::runner::{ExperimentParams, RunConfig};
use sns_core::config::{AlgorithmKind, Precision, SnsConfig};
use sns_runtime::{BaselineKind, EngineSpec, StreamingCpd};

/// A method under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// One of the SliceNStitch per-event updaters.
    Sns(AlgorithmKind),
    /// Periodic warm-started batch ALS with the given sweep count.
    AlsPeriodic(usize),
    /// Windowed OnlineSCP.
    OnlineScp,
    /// Windowed CP-stream.
    CpStream,
    /// Windowed NeCPD(n).
    NeCpd(usize),
}

impl Method {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Method::Sns(k) => k.name().to_string(),
            Method::AlsPeriodic(n) => format!("ALS({n})"),
            Method::OnlineScp => "OnlineSCP".to_string(),
            Method::CpStream => "CP-stream".to_string(),
            Method::NeCpd(n) => format!("NeCPD({n})"),
        }
    }

    /// True for per-event (continuous) methods.
    pub fn is_continuous(&self) -> bool {
        matches!(self, Method::Sns(_))
    }

    /// The declarative [`EngineSpec`] describing this method over the
    /// experiment's tensor-window geometry — the single construction
    /// path shared with the pooled runtime. The spec carries no seed;
    /// [`Method::build`] supplies one.
    pub fn spec(&self, params: &ExperimentParams) -> EngineSpec {
        match *self {
            Method::Sns(kind) => EngineSpec::sns(
                &params.base_dims,
                params.window,
                params.period,
                kind,
                &SnsConfig {
                    rank: params.rank,
                    theta: params.theta,
                    eta: params.eta,
                    init_scale: 1.0,
                    seed: 0, // not captured by the spec
                    precision: Precision::F64,
                },
            ),
            _ => {
                let algo = match *self {
                    Method::AlsPeriodic(sweeps) => BaselineKind::AlsPeriodic { sweeps },
                    Method::OnlineScp => BaselineKind::OnlineScp,
                    Method::CpStream => BaselineKind::CpStream { decay: 0.99, iters: 3 },
                    Method::NeCpd(epochs) => BaselineKind::NeCpd { epochs },
                    Method::Sns(_) => unreachable!("handled by the continuous arm"),
                };
                EngineSpec::baseline(
                    &params.base_dims,
                    params.window,
                    params.period,
                    params.rank,
                    algo,
                )
            }
        }
    }

    /// Builds the engine that runs this method by materializing
    /// [`Method::spec`]: every method becomes a `Box<dyn StreamingCpd>`
    /// and one generic drive loop serves all.
    ///
    /// Seeding: SNS engines draw factors and samples from `cfg.seed` (as
    /// the paper's runner always did). Periodic baselines draw their
    /// initial factors from `cfg.als.seed`, which makes the unified warm
    /// start — batch ALS from the engine's initial factors — bitwise
    /// identical to the protocol's former fresh `als()` call on the
    /// initial window *at the default `cfg.als.init_scale = 1.0`* (the
    /// scale the baseline constructors fix; see the parity suite in
    /// `tests/end_to_end.rs`). Two knowing deviations: a non-unit
    /// `init_scale` changes the baselines' starting factors relative to
    /// the old fresh `als()`, and NeCPD's live SGD sampler is now seeded
    /// by `cfg.als.seed` instead of `cfg.seed` — statistically, not
    /// bitwise, equivalent.
    pub fn build(&self, params: &ExperimentParams, cfg: &RunConfig) -> Box<dyn StreamingCpd> {
        let seed = if self.is_continuous() { cfg.seed } else { cfg.als.seed };
        self.spec(params).build(seed)
    }

    /// The method line-up of Figs. 4–5.
    pub fn fig45_lineup() -> Vec<Method> {
        vec![
            Method::Sns(AlgorithmKind::Mat),
            Method::Sns(AlgorithmKind::Vec),
            Method::Sns(AlgorithmKind::Rnd),
            Method::Sns(AlgorithmKind::PlusVec),
            Method::Sns(AlgorithmKind::PlusRnd),
            Method::OnlineScp,
            Method::CpStream,
            Method::NeCpd(1),
            Method::NeCpd(10),
        ]
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_lineup() {
        assert_eq!(Method::Sns(AlgorithmKind::PlusRnd).name(), "SNS+_RND");
        assert_eq!(Method::NeCpd(10).name(), "NeCPD(10)");
        assert_eq!(Method::AlsPeriodic(3).name(), "ALS(3)");
        let lineup = Method::fig45_lineup();
        assert_eq!(lineup.len(), 9);
        assert!(lineup[0].is_continuous());
        assert!(!Method::OnlineScp.is_continuous());
    }
}
