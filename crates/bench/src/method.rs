//! Unified method selector: the five SliceNStitch variants plus the four
//! conventional baselines.

use sns_core::config::AlgorithmKind;

/// A method under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// One of the SliceNStitch per-event updaters.
    Sns(AlgorithmKind),
    /// Periodic warm-started batch ALS with the given sweep count.
    AlsPeriodic(usize),
    /// Windowed OnlineSCP.
    OnlineScp,
    /// Windowed CP-stream.
    CpStream,
    /// Windowed NeCPD(n).
    NeCpd(usize),
}

impl Method {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Method::Sns(k) => k.name().to_string(),
            Method::AlsPeriodic(n) => format!("ALS({n})"),
            Method::OnlineScp => "OnlineSCP".to_string(),
            Method::CpStream => "CP-stream".to_string(),
            Method::NeCpd(n) => format!("NeCPD({n})"),
        }
    }

    /// True for per-event (continuous) methods.
    pub fn is_continuous(&self) -> bool {
        matches!(self, Method::Sns(_))
    }

    /// The method line-up of Figs. 4–5.
    pub fn fig45_lineup() -> Vec<Method> {
        vec![
            Method::Sns(AlgorithmKind::Mat),
            Method::Sns(AlgorithmKind::Vec),
            Method::Sns(AlgorithmKind::Rnd),
            Method::Sns(AlgorithmKind::PlusVec),
            Method::Sns(AlgorithmKind::PlusRnd),
            Method::OnlineScp,
            Method::CpStream,
            Method::NeCpd(1),
            Method::NeCpd(10),
        ]
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_lineup() {
        assert_eq!(Method::Sns(AlgorithmKind::PlusRnd).name(), "SNS+_RND");
        assert_eq!(Method::NeCpd(10).name(), "NeCPD(10)");
        assert_eq!(Method::AlsPeriodic(3).name(), "ALS(3)");
        let lineup = Method::fig45_lineup();
        assert_eq!(lineup.len(), 9);
        assert!(lineup[0].is_continuous());
        assert!(!Method::OnlineScp.is_continuous());
    }
}
