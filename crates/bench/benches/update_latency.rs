//! Per-event update latency of every SliceNStitch variant — the
//! microbenchmark behind Fig. 5a's continuous rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sns_bench::runner::{split_prefill, ExperimentParams};
use sns_core::als::{als, AlsOptions};
use sns_core::config::{AlgorithmKind, SnsConfig};
use sns_core::update::{ContinuousUpdater, Updater};
use sns_data::{generate, nytaxi_like};
use sns_stream::ContinuousWindow;

fn bench_updates(c: &mut Criterion) {
    let spec = nytaxi_like();
    let stream = generate(&spec.generator(20_000, 42));
    let params = ExperimentParams::from_spec(&spec);
    let (prefill, measured) = split_prefill(&params, &stream);

    let mut group = c.benchmark_group("update_latency");
    group.sample_size(10);
    for kind in
        [AlgorithmKind::Vec, AlgorithmKind::Rnd, AlgorithmKind::PlusVec, AlgorithmKind::PlusRnd]
    {
        group.bench_function(BenchmarkId::new("per_event", kind.name()), |b| {
            b.iter_custom(|iters| {
                // Fresh engine; warm-started per measurement.
                let config = SnsConfig {
                    rank: params.rank,
                    theta: params.theta,
                    eta: params.eta,
                    ..Default::default()
                };
                let mut dims = params.base_dims.clone();
                dims.push(params.window);
                let mut window =
                    ContinuousWindow::new(&params.base_dims, params.window, params.period);
                let mut updater = Updater::new(kind, &dims, &config);
                let mut buf = Vec::new();
                for tu in prefill {
                    buf.clear();
                    window.ingest(*tu, &mut buf).unwrap();
                }
                let warm = als(
                    window.tensor(),
                    params.rank,
                    &AlsOptions { max_iters: 10, tol: 1e-3, ..Default::default() },
                );
                updater.install(warm.kruskal, warm.grams);
                // Timed region: apply up to `iters` events (the stream is
                // long enough for Criterion's sample sizes; if it runs
                // out, the shorter measurement is still valid).
                let mut applied = 0u64;
                let start = std::time::Instant::now();
                'outer: for tu in measured {
                    buf.clear();
                    window.ingest(*tu, &mut buf).ok();
                    for d in &buf {
                        updater.apply(window.tensor(), d);
                        applied += 1;
                        if applied >= iters {
                            break 'outer;
                        }
                    }
                }
                start.elapsed()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
