//! Microbenchmarks of the hot kernels: the continuous window (Alg. 1),
//! sparse MTTKRP, Gram solves, fitness evaluation, and a full ALS sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sns_core::grams::{compute_grams, hadamard_except};
use sns_core::kruskal::KruskalTensor;
use sns_core::mttkrp::{mttkrp_full, mttkrp_row};
use sns_linalg::lstsq::solve_row_sym;
use sns_linalg::pinv::pinv_sym;
use sns_stream::{ContinuousWindow, StreamTuple};
use sns_tensor::{Coord, Shape, SparseTensor};

fn window_tensor(rng: &mut StdRng, dims: &[usize], nnz: usize) -> SparseTensor {
    let mut x = SparseTensor::new(Shape::new(dims));
    for _ in 0..nnz {
        let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
        x.add(&Coord::new(&c), rng.gen_range(1..4) as f64);
    }
    x
}

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("window");
    group.sample_size(20);
    group.bench_function("alg1_ingest_throughput", |b| {
        b.iter_custom(|iters| {
            let mut w = ContinuousWindow::new(&[150, 150], 10, 3600);
            let mut rng = StdRng::seed_from_u64(7);
            let mut buf = Vec::new();
            let start = std::time::Instant::now();
            let mut t = 0u64;
            for _ in 0..iters {
                t += rng.gen_range(0..5);
                let tu =
                    StreamTuple::new([rng.gen_range(0..150u32), rng.gen_range(0..150u32)], 1.0, t);
                buf.clear();
                w.ingest(tu, &mut buf).unwrap();
            }
            start.elapsed()
        })
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let dims = [150usize, 150, 10];
    let x = window_tensor(&mut rng, &dims, 10_000);
    let k = KruskalTensor::random(&mut rng, &dims, 20, 1.0);
    let grams = compute_grams(&k.factors);

    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    group.bench_function("mttkrp_full_10k_nnz_r20", |b| {
        b.iter(|| std::hint::black_box(mttkrp_full(&x, &k.factors, 0)))
    });
    group.bench_function("mttkrp_row_r20", |b| {
        let mut out = vec![0.0; 20];
        let mut scratch = vec![0.0; 20];
        b.iter(|| {
            mttkrp_row(&x, &k.factors, 0, 7, &mut out, &mut scratch).expect("rank-sized buffers");
            std::hint::black_box(out[0])
        })
    });
    let h = hadamard_except(&grams, 0, 20);
    group.bench_function("solve_row_sym_r20", |b| {
        let u: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut out = vec![0.0; 20];
        b.iter(|| {
            solve_row_sym(&h, &u, &mut out);
            std::hint::black_box(out[0])
        })
    });
    group
        .bench_function("pinv_sym_r20", |b| b.iter(|| std::hint::black_box(pinv_sym(&h).unwrap())));
    group.bench_function("fitness_10k_nnz_r20", |b| {
        b.iter(|| std::hint::black_box(sns_core::fitness::fitness_with_grams(&x, &k, &grams)))
    });
    group.bench_function("als_sweep_10k_nnz_r20", |b| {
        b.iter_batched(
            || (k.clone(), grams.clone()),
            |(mut kk, mut gg)| {
                sns_core::als::als_sweep(&x, &mut kk, &mut gg);
                std::hint::black_box(kk.lambda[0])
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_window, bench_kernels);
criterion_main!(benches);
