//! Cyclic Jacobi eigendecomposition for symmetric matrices.
//!
//! The Gram/Hadamard matrices `H` in ALS are symmetric and at most
//! `R × R` with `R ≈ 20`, where the classic Jacobi rotation method is both
//! simple and accurate (it computes small eigenvalues to high relative
//! accuracy, which matters for rank decisions in the pseudoinverse).

use crate::{LinalgError, Mat, Result};

/// Result of a symmetric eigendecomposition `A = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `k` corresponds to `values[k]`.
    pub vectors: Mat,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Computes all eigenvalues and eigenvectors of a symmetric matrix using
/// the cyclic Jacobi method.
///
/// The strict upper triangle of `a` is trusted; minor asymmetry from
/// floating-point accumulation is tolerated by symmetrizing internally.
///
/// # Errors
/// - [`LinalgError::NotSquare`] if `a` is not square.
/// - [`LinalgError::NonFinite`] if `a` contains NaN/inf.
/// - [`LinalgError::NoConvergence`] if off-diagonal mass does not vanish
///   within `MAX_SWEEPS` (64) sweeps (practically unreachable for `n ≤ 100`).
pub fn eigen_sym(a: &Mat) -> Result<SymEigen> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { op: "eigen_sym", shape: a.shape() });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite { op: "eigen_sym" });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(SymEigen { values: vec![], vectors: Mat::zeros(0, 0) });
    }

    // Work on a symmetrized copy.
    let mut m = Mat::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = Mat::identity(n);

    let frob = m.frob_norm();
    // An all-zero matrix is already diagonal.
    let tol = if frob == 0.0 { 0.0 } else { frob * 1e-15 };

    for sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            return Ok(sort_eigen(m, v));
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq == 0.0 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classical Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update rows/columns p and q of M = Jᵀ M J.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate the rotation into V.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
        let _ = sweep;
    }
    Err(LinalgError::NoConvergence { op: "jacobi", iterations: MAX_SWEEPS })
}

/// Sorts eigenpairs by descending eigenvalue.
fn sort_eigen(m: Mat, v: Mat) -> SymEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].total_cmp(&m[(i, i)]));
    let values: Vec<f64> = order.iter().map(|&k| m[(k, k)]).collect();
    let vectors = Mat::from_fn(n, n, |r, c| v[(r, order[c])]);
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gram, matmul};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reconstruct(e: &SymEigen) -> Mat {
        let n = e.values.len();
        let d = Mat::from_fn(n, n, |i, j| if i == j { e.values[i] } else { 0.0 });
        matmul(&matmul(&e.vectors, &d).unwrap(), &e.vectors.transpose()).unwrap()
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Mat::from_rows(&[&[3., 0.], &[0., 1.]]);
        let e = eigen_sym(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Mat::from_rows(&[&[2., 1.], &[1., 2.]]);
        let e = eigen_sym(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthonormality_random() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 5, 12, 20] {
            let b = Mat::random(&mut rng, n + 3, n, 1.0);
            let a = gram(&b);
            let e = eigen_sym(&a).unwrap();
            let rec = reconstruct(&e);
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (rec[(i, j)] - a[(i, j)]).abs() < 1e-9 * (1.0 + a.max_abs()),
                        "n={n} ({i},{j})"
                    );
                }
            }
            // VᵀV = I
            let vtv = gram(&e.vectors);
            for i in 0..n {
                for j in 0..n {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!((vtv[(i, j)] - expect).abs() < 1e-10);
                }
            }
            // Values descending and non-negative (Gram matrix).
            for k in 1..n {
                assert!(e.values[k - 1] >= e.values[k] - 1e-12);
            }
            assert!(e.values[n - 1] > -1e-9);
        }
    }

    #[test]
    fn handles_indefinite_matrices() {
        let a = Mat::from_rows(&[&[0., 1.], &[1., 0.]]); // eigenvalues ±1
        let e = eigen_sym(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_and_empty_matrices() {
        let e = eigen_sym(&Mat::zeros(3, 3)).unwrap();
        assert!(e.values.iter().all(|&v| v == 0.0));
        let e = eigen_sym(&Mat::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(eigen_sym(&Mat::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
        let mut a = Mat::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(eigen_sym(&a), Err(LinalgError::NonFinite { .. })));
    }

    #[test]
    fn trace_is_preserved() {
        let mut rng = StdRng::seed_from_u64(13);
        let b = Mat::random(&mut rng, 10, 8, 1.0);
        let a = gram(&b);
        let trace: f64 = (0..8).map(|i| a[(i, i)]).sum();
        let e = eigen_sym(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9 * trace.max(1.0));
    }
}
