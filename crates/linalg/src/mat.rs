//! Row-major dense matrix.
//!
//! [`Mat`] is the only matrix type in the workspace. It is deliberately
//! simple: a `Vec<f64>` in row-major order with a `(rows, cols)` shape.
//! Row views are plain slices, which makes the per-row updates at the heart
//! of SliceNStitch allocation-free.

use std::fmt;
use std::ops::{Index, IndexMut};

use rand::Rng;

/// A dense `rows × cols` matrix of `f64`, stored row-major.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Mat { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Mat::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Mat { rows, cols, data }
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Mat::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Mat { rows: r, cols: c, data }
    }

    /// Creates a matrix by evaluating `f(r, c)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[0, scale)`.
    ///
    /// Non-negative random initialization is the conventional starting point
    /// for CP factor matrices of count tensors.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, scale: f64) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen::<f64>() * scale).collect();
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Underlying row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows, "row {} out of bounds ({} rows)", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows, "row {} out of bounds ({} rows)", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {} out of bounds ({} cols)", c, self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Overwrites row `r` with `values`.
    ///
    /// # Panics
    /// Panics if `values.len() != cols`.
    pub fn set_row(&mut self, r: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "set_row: wrong length");
        self.row_mut(r).copy_from_slice(values);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sets every entry to `value`, keeping the allocation.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Reshapes to `rows × cols`, reusing the allocation when possible.
    /// Entry values are unspecified afterwards (callers overwrite).
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// Frobenius norm `sqrt(Σ x²)`.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (∞-norm over entries); 0 for empty matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Appends a row at the bottom (used by growing time-mode factors).
    ///
    /// # Panics
    /// Panics if `values.len() != cols`.
    pub fn push_row(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "push_row: wrong length");
        self.data.extend_from_slice(values);
        self.rows += 1;
    }

    /// Removes the first row, shifting all others up (sliding time window).
    ///
    /// # Panics
    /// Panics if the matrix has no rows.
    pub fn pop_front_row(&mut self) {
        assert!(self.rows > 0, "pop_front_row on empty matrix");
        self.data.drain(0..self.cols);
        self.rows -= 1;
    }

    /// Shifts all rows up by one and zero-fills the last row
    /// (`row[i] ← row[i+1]`, `row[last] ← 0`). Used when the tensor window
    /// slides by one period: the oldest time index disappears and a fresh
    /// one appears.
    pub fn shift_rows_up(&mut self) {
        if self.rows == 0 {
            return;
        }
        self.data.copy_within(self.cols.., 0);
        let start = (self.rows - 1) * self.cols;
        self.data[start..].iter_mut().for_each(|x| *x = 0.0);
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let m = Mat::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_length() {
        let _ = Mat::from_vec(2, 2, vec![1.0; 5]);
    }

    #[test]
    fn from_rows_and_row_views() {
        let m = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        assert_eq!(m.row(0), &[1., 2.]);
        assert_eq!(m.row(1), &[3., 4.]);
        assert_eq!(m.col(1), vec![2., 4.]);
    }

    #[test]
    fn from_fn_evaluates_positions() {
        let m = Mat::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m[(0, 1)], 1.0);
    }

    #[test]
    fn transpose_is_involution() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Mat::random(&mut rng, 4, 3, 1.0);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn set_row_and_row_mut() {
        let mut m = Mat::zeros(2, 2);
        m.set_row(1, &[5., 6.]);
        assert_eq!(m.row(1), &[5., 6.]);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m[(0, 1)], 9.0);
    }

    #[test]
    fn push_and_pop_rows() {
        let mut m = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        m.push_row(&[5., 6.]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row(2), &[5., 6.]);
        m.pop_front_row();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[3., 4.]);
    }

    #[test]
    fn shift_rows_up_slides_window() {
        let mut m = Mat::from_rows(&[&[1., 1.], &[2., 2.], &[3., 3.]]);
        m.shift_rows_up();
        assert_eq!(m.row(0), &[2., 2.]);
        assert_eq!(m.row(1), &[3., 3.]);
        assert_eq!(m.row(2), &[0., 0.]);
        // Degenerate case: empty matrix is a no-op.
        let mut e = Mat::zeros(0, 4);
        e.shift_rows_up();
        assert_eq!(e.rows(), 0);
    }

    #[test]
    fn norms_and_finiteness() {
        let m = Mat::from_rows(&[&[3., 0.], &[0., 4.]]);
        assert!((m.frob_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.is_finite());
        let mut bad = m.clone();
        bad[(0, 0)] = f64::NAN;
        assert!(!bad.is_finite());
    }

    #[test]
    fn scale_and_fill() {
        let mut m = Mat::filled(2, 2, 2.0);
        m.scale_in_place(3.0);
        assert_eq!(m[(1, 1)], 6.0);
        m.fill_zero();
        assert_eq!(m.frob_norm(), 0.0);
    }

    #[test]
    fn random_respects_scale_and_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let m1 = Mat::random(&mut a, 5, 5, 0.5);
        let m2 = Mat::random(&mut b, 5, 5, 0.5);
        assert_eq!(m1, m2);
        assert!(m1.as_slice().iter().all(|&x| (0.0..0.5).contains(&x)));
    }

    #[test]
    fn debug_format_is_bounded() {
        let m = Mat::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("Mat 20x20"));
        assert!(s.contains('…'));
    }
}
