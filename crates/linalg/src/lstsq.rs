//! Small least-squares solves via normal equations.
//!
//! All LS problems in this workspace have at most a few dozen unknowns, so
//! the normal-equation route (`x = (AᵀA)† Aᵀ b`) is accurate enough and
//! far cheaper than QR for our shapes.

use crate::ops::{matmul, matmul_transa};
use crate::pinv::pinv_sym;
use crate::{LinalgError, Mat, Result};

/// Solves `min ‖A·x − b‖₂` for a single right-hand side.
///
/// Returns the minimum-norm solution when `A` is rank deficient.
pub fn lstsq(a: &Mat, b: &[f64]) -> Result<Vec<f64>> {
    if a.rows() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "lstsq",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let bm = Mat::from_vec(b.len(), 1, b.to_vec());
    let x = lstsq_multi(a, &bm)?;
    Ok(x.as_slice().to_vec())
}

/// Solves `min ‖A·X − B‖_F` column-wise for multiple right-hand sides.
pub fn lstsq_multi(a: &Mat, b: &Mat) -> Result<Mat> {
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "lstsq_multi",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let g = matmul_transa(a, a)?; // AᵀA
    let rhs = matmul_transa(a, b)?; // AᵀB
    let gi = pinv_sym(&g)?;
    matmul(&gi, &rhs)
}

/// Solves the row-form LS problem `min ‖x·Gᵀ − row‖` that appears in the
/// paper's Eq. (12): given the Gram-side matrix `h = KᵀK` (already the
/// Hadamard of Grams) and the MTTKRP row `u = row·K`, the solution is
/// `x = u · h†`. Writes into `out`.
pub fn solve_row(u: &[f64], h_pinv: &Mat, out: &mut [f64]) {
    crate::ops::row_times_mat(u, h_pinv, out);
}

/// Relative pivot threshold below which a Gram system is treated as
/// rank-deficient and solved by truncated pseudoinverse instead of an
/// exact Cholesky solve.
pub const GRAM_PIVOT_RTOL: f64 = 1e-10;

/// Fast path for the ubiquitous `x = u · H†` with symmetric PSD `H`:
/// a Cholesky solve (`H` is symmetric, so `u·H† = (H†·uᵀ)ᵀ`), falling
/// back to the eigendecomposition pseudoinverse only when `H` is
/// singular. ~20× cheaper than forming `H†` for the well-conditioned
/// Gram systems that dominate per-event updates.
pub fn solve_row_sym(h: &Mat, u: &[f64], out: &mut [f64]) {
    debug_assert_eq!(h.rows(), h.cols());
    debug_assert_eq!(u.len(), h.rows());
    debug_assert_eq!(out.len(), h.rows());
    match crate::chol::cholesky_with_tol(h, GRAM_PIVOT_RTOL) {
        Ok(l) => {
            out.copy_from_slice(u);
            crate::chol::solve_chol_in_place(&l, out);
        }
        Err(_) => {
            // Near-singular: truncated pseudoinverse (zeroes the tiny
            // eigendirections instead of amplifying through them).
            let h_pinv = pinv_sym(h).expect("finite symmetric system");
            crate::ops::row_times_mat(u, &h_pinv, out);
        }
    }
}

/// Solves `X · H = U` for symmetric PSD `H` (i.e. `X = U·H†`), row-block
/// form of [`solve_row_sym`] used by full-matrix refreshes (Eq. 4).
pub fn solve_xh_eq_u(h: &Mat, u: &Mat) -> Result<Mat> {
    if h.rows() != h.cols() {
        return Err(LinalgError::NotSquare { op: "solve_xh_eq_u", shape: h.shape() });
    }
    if u.cols() != h.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_xh_eq_u",
            lhs: u.shape(),
            rhs: h.shape(),
        });
    }
    match crate::chol::cholesky_with_tol(h, GRAM_PIVOT_RTOL) {
        Ok(l) => {
            let mut x = u.clone();
            let mut col = vec![0.0; h.rows()];
            for i in 0..x.rows() {
                col.copy_from_slice(x.row(i));
                crate::chol::solve_chol_in_place(&l, &mut col);
                x.set_row(i, &col);
            }
            Ok(x)
        }
        Err(_) => {
            let h_pinv = pinv_sym(h)?;
            matmul(u, &h_pinv)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_system_recovered() {
        let a = Mat::from_rows(&[&[1., 0.], &[0., 2.], &[1., 1.]]);
        let x_true = [3.0, -1.0];
        let b: Vec<f64> = (0..3).map(|i| a[(i, 0)] * x_true[0] + a[(i, 1)] * x_true[1]).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn overdetermined_minimizes_residual() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = Mat::random(&mut rng, 20, 4, 1.0);
        let b: Vec<f64> = (0..20).map(|_| rand::Rng::gen::<f64>(&mut rng)).collect();
        let x = lstsq(&a, &b).unwrap();
        // Perturbing the solution must not decrease the residual.
        let resid = |x: &[f64]| -> f64 {
            (0..20)
                .map(|i| {
                    let pred: f64 = (0..4).map(|j| a[(i, j)] * x[j]).sum();
                    (pred - b[i]).powi(2)
                })
                .sum()
        };
        let base = resid(&x);
        for j in 0..4 {
            for delta in [-1e-3, 1e-3] {
                let mut xp = x.clone();
                xp[j] += delta;
                assert!(resid(&xp) >= base - 1e-12);
            }
        }
    }

    #[test]
    fn rank_deficient_gives_min_norm() {
        // A has two identical columns: solutions form a line; the
        // pseudoinverse picks the minimum-norm point (equal split).
        let a = Mat::from_rows(&[&[1., 1.], &[2., 2.]]);
        let b = [2.0, 4.0];
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn shape_validation() {
        assert!(lstsq(&Mat::zeros(3, 2), &[1.0; 4]).is_err());
        assert!(lstsq_multi(&Mat::zeros(3, 2), &Mat::zeros(4, 1)).is_err());
    }

    #[test]
    fn multi_rhs_matches_single() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = Mat::random(&mut rng, 10, 3, 1.0);
        let b = Mat::random(&mut rng, 10, 2, 1.0);
        let x = lstsq_multi(&a, &b).unwrap();
        for j in 0..2 {
            let col: Vec<f64> = (0..10).map(|i| b[(i, j)]).collect();
            let xj = lstsq(&a, &col).unwrap();
            for i in 0..3 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_row_is_row_times_mat() {
        let h = Mat::from_rows(&[&[2., 0.], &[0., 4.]]);
        let hp = pinv_sym(&h).unwrap();
        let mut out = [0.0; 2];
        solve_row(&[2.0, 8.0], &hp, &mut out);
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert!((out[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_row_sym_matches_pinv_route() {
        use crate::ops::gram;
        let mut rng = StdRng::seed_from_u64(33);
        let a = Mat::random(&mut rng, 10, 4, 1.0);
        let mut h = gram(&a);
        for i in 0..4 {
            h[(i, i)] += 0.1;
        }
        let u = [1.0, -2.0, 0.5, 3.0];
        let mut fast = [0.0; 4];
        solve_row_sym(&h, &u, &mut fast);
        let hp = pinv_sym(&h).unwrap();
        let mut slow = [0.0; 4];
        crate::ops::row_times_mat(&u, &hp, &mut slow);
        for k in 0..4 {
            assert!((fast[k] - slow[k]).abs() < 1e-8, "{} vs {}", fast[k], slow[k]);
        }
    }

    #[test]
    fn solve_row_sym_singular_falls_back() {
        // Rank-1 H: Cholesky fails; pinv path must give the min-norm fit.
        let v = Mat::from_rows(&[&[1.0], &[2.0]]);
        let h = crate::ops::matmul(&v, &v.transpose()).unwrap();
        let u = [1.0, 2.0]; // in the row space
        let mut out = [0.0; 2];
        solve_row_sym(&h, &u, &mut out);
        // x·H should reproduce u.
        let mut back = [0.0; 2];
        crate::ops::row_times_mat(&out, &h, &mut back);
        assert!((back[0] - 1.0).abs() < 1e-9 && (back[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solve_xh_matches_explicit_pinv() {
        use crate::ops::gram;
        let mut rng = StdRng::seed_from_u64(34);
        let a = Mat::random(&mut rng, 8, 3, 1.0);
        let mut h = gram(&a);
        for i in 0..3 {
            h[(i, i)] += 0.2;
        }
        let u = Mat::random(&mut rng, 5, 3, 1.0);
        let fast = solve_xh_eq_u(&h, &u).unwrap();
        let slow = matmul(&u, &pinv_sym(&h).unwrap()).unwrap();
        for i in 0..5 {
            for j in 0..3 {
                assert!((fast[(i, j)] - slow[(i, j)]).abs() < 1e-8);
            }
        }
        assert!(solve_xh_eq_u(&Mat::zeros(2, 3), &u).is_err());
        assert!(solve_xh_eq_u(&Mat::identity(4), &u).is_err());
    }
}
