//! Error type shared by all fallible linear-algebra operations.

use std::fmt;

/// Errors produced by linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Operation that was attempted (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A square-matrix operation received a non-square matrix.
    NotSquare {
        /// Operation that was attempted.
        op: &'static str,
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// Cholesky factorization hit a non-positive pivot.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value of the failing pivot.
        value: f64,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Routine that failed (e.g. `"jacobi"`).
        op: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// A matrix contained NaN or infinity where finite values are required.
    NonFinite {
        /// Operation that detected the problem.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch between {}x{} and {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { op, shape } => {
                write!(f, "{op}: expected square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NotPositiveDefinite { pivot, value } => {
                write!(f, "cholesky: non-positive pivot {value:.3e} at index {pivot}")
            }
            LinalgError::NoConvergence { op, iterations } => {
                write!(f, "{op}: no convergence after {iterations} iterations")
            }
            LinalgError::NonFinite { op } => write!(f, "{op}: non-finite value encountered"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::DimensionMismatch { op: "matmul", lhs: (2, 3), rhs: (4, 5) };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3"));

        let e = LinalgError::NotSquare { op: "eig", shape: (2, 3) };
        assert!(e.to_string().contains("square"));

        let e = LinalgError::NotPositiveDefinite { pivot: 1, value: -0.5 };
        assert!(e.to_string().contains("pivot"));

        let e = LinalgError::NoConvergence { op: "jacobi", iterations: 30 };
        assert!(e.to_string().contains("30"));

        let e = LinalgError::NonFinite { op: "pinv" };
        assert!(e.to_string().contains("non-finite"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(LinalgError::NonFinite { op: "x" });
    }
}
