//! Cholesky factorization and SPD linear solves.
//!
//! The normal-equation matrices `H = ∗ AᵀA` arising in ALS are symmetric
//! positive semi-definite; when they are strictly positive definite a
//! Cholesky solve is the cheapest option. [`solve_spd`] falls back to a
//! pseudoinverse-based solve only when the factorization fails, matching
//! the `H†` used in the paper.

use crate::{LinalgError, Mat, Result};

/// Computes the lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
///
/// # Errors
/// Returns [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
/// positive.
pub fn cholesky(a: &Mat) -> Result<Mat> {
    cholesky_with_tol(a, 0.0)
}

/// Cholesky with a *relative* pivot threshold: factorization fails as
/// "not positive definite" if any pivot drops below
/// `rel_tol · max_diag(A)`. Solver callers use this to detect
/// near-singular Gram systems and divert them to the truncated
/// pseudoinverse — an exact solve through a tiny pivot amplifies noise by
/// `1/λ_min`, which is precisely the runaway the paper's clipped variants
/// guard against.
pub fn cholesky_with_tol(a: &Mat, rel_tol: f64) -> Result<Mat> {
    // cholesky_into resizes and zero-fills, so start from an empty Mat.
    let mut l = Mat::zeros(0, 0);
    cholesky_into(a, rel_tol, &mut l)?;
    Ok(l)
}

/// [`cholesky_with_tol`] writing into a caller-provided matrix: the
/// allocation-free form the per-event hot path uses (see
/// `sns_linalg::cached`). `l` is resized/zeroed internally, so any matrix
/// may be passed; on error its contents are unspecified.
///
/// The inner loops run over contiguous row slices (dot products), which
/// the compiler autovectorizes. The dot accumulates partial products
/// before subtracting (instead of subtracting one term at a time), a
/// reassociation that perturbs results only at machine-epsilon scale;
/// the parity proptests pin it to ≤ 1e-12 of the fresh reference solve.
pub fn cholesky_into(a: &Mat, rel_tol: f64, l: &mut Mat) -> Result<()> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { op: "cholesky", shape: a.shape() });
    }
    let n = a.rows();
    let max_diag = (0..n).fold(0.0_f64, |m, i| m.max(a[(i, i)].abs()));
    let floor = rel_tol * max_diag;
    l.resize_to(n, n);
    l.fill_zero();
    let d = l.as_mut_slice();
    for i in 0..n {
        // Rows `< i` are finished; split so row `i` can be written while
        // earlier rows are read (the `L(i,k)·L(j,k)` dot products).
        let (prev, cur) = d.split_at_mut(i * n);
        let row_i = &mut cur[..n];
        for j in 0..i {
            let row_j = &prev[j * n..j * n + n];
            let sum = a[(i, j)] - crate::ops::dot(&row_i[..j], &row_j[..j]);
            row_i[j] = sum / row_j[j];
        }
        let sum = a[(i, i)] - crate::ops::dot(&row_i[..i], &row_i[..i]);
        if sum <= floor || sum <= 0.0 || !sum.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: i, value: sum });
        }
        row_i[i] = sum.sqrt();
    }
    Ok(())
}

/// [`cholesky_into`] that additionally returns the reciprocals of `L`'s
/// diagonal in `inv_diag`, and uses them internally: every `x / L(j,j)`
/// becomes `x · (1/L(j,j))`, turning ~`n²/2` hardware divisions (the
/// dominant cost of an `R = 20` factorization — division is an order of
/// magnitude slower than multiply and does not pipeline) into multiplies.
/// The substitution sweeps reuse `inv_diag` the same way.
///
/// `x·(1/d)` differs from `x/d` by ≤ 2 ulp, so results match
/// [`cholesky_into`] to machine precision, not bitwise — within the
/// 1e-12 envelope the parity proptests enforce.
pub fn cholesky_into_inv(
    a: &Mat,
    rel_tol: f64,
    l: &mut Mat,
    inv_diag: &mut Vec<f64>,
) -> Result<()> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { op: "cholesky", shape: a.shape() });
    }
    let n = a.rows();
    let max_diag = (0..n).fold(0.0_f64, |m, i| m.max(a[(i, i)].abs()));
    let floor = rel_tol * max_diag;
    l.resize_to(n, n);
    inv_diag.resize(n, 0.0);
    // Only the lower triangle is written (and only it is ever read by the
    // substitution sweeps); the strict upper triangle keeps stale values,
    // saving the `n²` zero-fill of the boxed variant.
    let d = l.as_mut_slice();
    let ad = a.as_slice();
    for i in 0..n {
        let (prev, cur) = d.split_at_mut(i * n);
        let row_i = &mut cur[..n];
        let arow = &ad[i * n..(i + 1) * n];
        for j in 0..i {
            let row_j = &prev[j * n..j * n + n];
            let sum = arow[j] - crate::ops::dot(&row_i[..j], &row_j[..j]);
            row_i[j] = sum * inv_diag[j];
        }
        let sum = arow[i] - crate::ops::dot(&row_i[..i], &row_i[..i]);
        if sum <= floor || sum <= 0.0 || !sum.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: i, value: sum });
        }
        let diag = sum.sqrt();
        row_i[i] = diag;
        inv_diag[i] = 1.0 / diag;
    }
    Ok(())
}

/// Solves `L·y = b` for lower-triangular `L` (forward substitution), in place.
pub fn forward_sub(l: &Mat, b: &mut [f64]) {
    let n = l.rows();
    debug_assert_eq!(b.len(), n);
    for i in 0..n {
        let row = l.row(i);
        let (head, tail) = b.split_at_mut(i);
        tail[0] = (tail[0] - crate::ops::dot(&row[..i], head)) / row[i];
    }
}

/// Solves `Lᵀ·x = y` for lower-triangular `L` (backward substitution), in place.
///
/// Walks a *column* of `L` (stride `n`), which is cache-hostile; the
/// cached solver ([`crate::cached::SymSolveCache`]) materializes `Lᵀ`
/// row-major and substitutes over contiguous slices instead.
pub fn backward_sub_t(l: &Mat, y: &mut [f64]) {
    let n = l.rows();
    debug_assert_eq!(y.len(), n);
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
}

/// Solves `A·x = b` for symmetric positive-definite `A` via Cholesky,
/// overwriting `b` with the solution.
pub fn solve_chol_in_place(l: &Mat, b: &mut [f64]) {
    forward_sub(l, b);
    backward_sub_t(l, b);
}

/// Solves `A·X = B` (column-by-column) for SPD `A`, trying Cholesky first
/// and falling back to the eigendecomposition pseudoinverse when `A` is
/// singular or indefinite. This is the `H†`-style solve of Eq. (4).
pub fn solve_spd(a: &Mat, b: &Mat) -> Result<Mat> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { op: "solve_spd", shape: a.shape() });
    }
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_spd",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    match cholesky(a) {
        Ok(l) => {
            let n = a.rows();
            let mut x = Mat::zeros(n, b.cols());
            let mut col = vec![0.0; n];
            for j in 0..b.cols() {
                for i in 0..n {
                    col[i] = b[(i, j)];
                }
                solve_chol_in_place(&l, &mut col);
                for i in 0..n {
                    x[(i, j)] = col[i];
                }
            }
            Ok(x)
        }
        Err(_) => {
            // Singular or indefinite: use the Moore–Penrose pseudoinverse.
            let pinv = crate::pinv::pinv_sym(a)?;
            crate::ops::matmul(&pinv, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gram, matmul};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spd(n: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::random(&mut rng, n + 2, n, 1.0);
        let mut g = gram(&a);
        for i in 0..n {
            g[(i, i)] += 0.1; // safely positive definite
        }
        g
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(6, 1);
        let l = cholesky(&a).unwrap();
        let rec = matmul(&l, &l.transpose()).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
        // L is lower triangular.
        for i in 0..6 {
            for j in i + 1..6 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert!(matches!(cholesky(&Mat::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[&[1., 2.], &[2., 1.]]); // eigenvalues 3, −1
        assert!(matches!(cholesky(&a), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd(5, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let x_true = Mat::random(&mut rng, 5, 3, 1.0);
        let b = matmul(&a, &x_true).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        for i in 0..5 {
            for j in 0..3 {
                assert!((x[(i, j)] - x_true[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn solve_spd_falls_back_on_singular() {
        // Rank-1 PSD matrix: Cholesky fails, pinv path must still produce
        // the minimum-norm solution.
        let v = Mat::from_rows(&[&[1.0], &[2.0]]);
        let a = matmul(&v, &v.transpose()).unwrap(); // [[1,2],[2,4]]
        let b = Mat::from_rows(&[&[1.0], &[2.0]]); // in the column space
        let x = solve_spd(&a, &b).unwrap();
        let residual = crate::ops::sub(&matmul(&a, &x).unwrap(), &b).unwrap();
        assert!(residual.frob_norm() < 1e-10);
    }

    #[test]
    fn solve_spd_validates_shapes() {
        assert!(solve_spd(&Mat::zeros(2, 3), &Mat::zeros(2, 1)).is_err());
        assert!(solve_spd(&Mat::identity(2), &Mat::zeros(3, 1)).is_err());
    }

    #[test]
    fn substitution_kernels() {
        let l = Mat::from_rows(&[&[2., 0.], &[1., 3.]]);
        let mut b = [4., 10.];
        forward_sub(&l, &mut b); // y = [2, 8/3]
        assert!((b[0] - 2.0).abs() < 1e-14);
        assert!((b[1] - 8.0 / 3.0).abs() < 1e-14);
        let mut y = [2., 3.];
        backward_sub_t(&l, &mut y); // solves Lᵀ x = y
        assert!((y[1] - 1.0).abs() < 1e-14);
        assert!((y[0] - 0.5).abs() < 1e-14);
    }
}
