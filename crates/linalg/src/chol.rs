//! Cholesky factorization and SPD linear solves.
//!
//! The normal-equation matrices `H = ∗ AᵀA` arising in ALS are symmetric
//! positive semi-definite; when they are strictly positive definite a
//! Cholesky solve is the cheapest option. [`solve_spd`] falls back to a
//! pseudoinverse-based solve only when the factorization fails, matching
//! the `H†` used in the paper.

use crate::{LinalgError, Mat, Result};

/// Computes the lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
///
/// # Errors
/// Returns [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
/// positive.
pub fn cholesky(a: &Mat) -> Result<Mat> {
    cholesky_with_tol(a, 0.0)
}

/// Cholesky with a *relative* pivot threshold: factorization fails as
/// "not positive definite" if any pivot drops below
/// `rel_tol · max_diag(A)`. Solver callers use this to detect
/// near-singular Gram systems and divert them to the truncated
/// pseudoinverse — an exact solve through a tiny pivot amplifies noise by
/// `1/λ_min`, which is precisely the runaway the paper's clipped variants
/// guard against.
pub fn cholesky_with_tol(a: &Mat, rel_tol: f64) -> Result<Mat> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { op: "cholesky", shape: a.shape() });
    }
    let n = a.rows();
    let max_diag = (0..n).fold(0.0_f64, |m, i| m.max(a[(i, i)].abs()));
    let floor = rel_tol * max_diag;
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= floor || sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i, value: sum });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `L·y = b` for lower-triangular `L` (forward substitution), in place.
pub fn forward_sub(l: &Mat, b: &mut [f64]) {
    let n = l.rows();
    debug_assert_eq!(b.len(), n);
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * b[k];
        }
        b[i] = sum / l[(i, i)];
    }
}

/// Solves `Lᵀ·x = y` for lower-triangular `L` (backward substitution), in place.
pub fn backward_sub_t(l: &Mat, y: &mut [f64]) {
    let n = l.rows();
    debug_assert_eq!(y.len(), n);
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
}

/// Solves `A·x = b` for symmetric positive-definite `A` via Cholesky,
/// overwriting `b` with the solution.
pub fn solve_chol_in_place(l: &Mat, b: &mut [f64]) {
    forward_sub(l, b);
    backward_sub_t(l, b);
}

/// Solves `A·X = B` (column-by-column) for SPD `A`, trying Cholesky first
/// and falling back to the eigendecomposition pseudoinverse when `A` is
/// singular or indefinite. This is the `H†`-style solve of Eq. (4).
pub fn solve_spd(a: &Mat, b: &Mat) -> Result<Mat> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { op: "solve_spd", shape: a.shape() });
    }
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_spd",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    match cholesky(a) {
        Ok(l) => {
            let n = a.rows();
            let mut x = Mat::zeros(n, b.cols());
            let mut col = vec![0.0; n];
            for j in 0..b.cols() {
                for i in 0..n {
                    col[i] = b[(i, j)];
                }
                solve_chol_in_place(&l, &mut col);
                for i in 0..n {
                    x[(i, j)] = col[i];
                }
            }
            Ok(x)
        }
        Err(_) => {
            // Singular or indefinite: use the Moore–Penrose pseudoinverse.
            let pinv = crate::pinv::pinv_sym(a)?;
            crate::ops::matmul(&pinv, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gram, matmul};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spd(n: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::random(&mut rng, n + 2, n, 1.0);
        let mut g = gram(&a);
        for i in 0..n {
            g[(i, i)] += 0.1; // safely positive definite
        }
        g
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(6, 1);
        let l = cholesky(&a).unwrap();
        let rec = matmul(&l, &l.transpose()).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
        // L is lower triangular.
        for i in 0..6 {
            for j in i + 1..6 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert!(matches!(cholesky(&Mat::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[&[1., 2.], &[2., 1.]]); // eigenvalues 3, −1
        assert!(matches!(cholesky(&a), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd(5, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let x_true = Mat::random(&mut rng, 5, 3, 1.0);
        let b = matmul(&a, &x_true).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        for i in 0..5 {
            for j in 0..3 {
                assert!((x[(i, j)] - x_true[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn solve_spd_falls_back_on_singular() {
        // Rank-1 PSD matrix: Cholesky fails, pinv path must still produce
        // the minimum-norm solution.
        let v = Mat::from_rows(&[&[1.0], &[2.0]]);
        let a = matmul(&v, &v.transpose()).unwrap(); // [[1,2],[2,4]]
        let b = Mat::from_rows(&[&[1.0], &[2.0]]); // in the column space
        let x = solve_spd(&a, &b).unwrap();
        let residual = crate::ops::sub(&matmul(&a, &x).unwrap(), &b).unwrap();
        assert!(residual.frob_norm() < 1e-10);
    }

    #[test]
    fn solve_spd_validates_shapes() {
        assert!(solve_spd(&Mat::zeros(2, 3), &Mat::zeros(2, 1)).is_err());
        assert!(solve_spd(&Mat::identity(2), &Mat::zeros(3, 1)).is_err());
    }

    #[test]
    fn substitution_kernels() {
        let l = Mat::from_rows(&[&[2., 0.], &[1., 3.]]);
        let mut b = [4., 10.];
        forward_sub(&l, &mut b); // y = [2, 8/3]
        assert!((b[0] - 2.0).abs() < 1e-14);
        assert!((b[1] - 8.0 / 3.0).abs() < 1e-14);
        let mut y = [2., 3.];
        backward_sub_t(&l, &mut y); // solves Lᵀ x = y
        assert!((y[1] - 1.0).abs() < 1e-14);
        assert!((y[0] - 0.5).abs() < 1e-14);
    }
}
