//! # sns-linalg
//!
//! Dense linear-algebra substrate for the SliceNStitch reproduction.
//!
//! CP decomposition at rank `R` only ever needs *small* dense kernels:
//! `R × R` Gram matrices, their Hadamard products and pseudoinverses, and
//! `N × R` factor matrices accessed row-wise. This crate provides exactly
//! those kernels with zero external dependencies:
//!
//! - [`Mat`]: a row-major dense matrix with cheap row views,
//! - [`ops`]: products (matmul, Gram, Hadamard, Khatri–Rao), sums, norms,
//! - [`chol`]: Cholesky factorization and SPD solves,
//! - [`cached`]: reusable factorizations for repeated row solves,
//! - [`eigen`]: Jacobi eigendecomposition for symmetric matrices,
//! - [`pinv`]: Moore–Penrose pseudoinverse (symmetric PSD and general),
//! - [`lstsq`]: small least-squares solves via normal equations.
//!
//! All kernels are written for matrices whose smaller dimension is ~10–100,
//! which is the regime of the paper (rank `R = 20`); none of them allocate
//! in per-row hot paths.

pub mod cached;
pub mod chol;
pub mod eigen;
pub mod error;
pub mod lstsq;
pub mod mat;
pub mod ops;
pub mod pinv;

pub use error::LinalgError;
pub use mat::Mat;

/// Result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Machine-epsilon-scaled factor used as the default rank cutoff in
/// pseudoinverse computations: eigenvalues below `max_eig * n * EPS_FACTOR`
/// are treated as zero.
pub const EPS_FACTOR: f64 = f64::EPSILON * 64.0;
