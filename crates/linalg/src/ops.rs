//! Matrix and vector products used throughout CP decomposition.
//!
//! The naming follows the paper: `⊙` is the Khatri–Rao (column-wise
//! Kronecker) product, `∗` the Hadamard (element-wise) product, and
//! `AᵀA` the Gram matrix. The Khatri–Rao product is only ever materialized
//! for oracle tests — the streaming algorithms use row-wise shortcuts.

use crate::{LinalgError, Mat, Result};

/// `C = A · B`.
pub fn matmul(a: &Mat, b: &Mat) -> Result<Mat> {
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut c = Mat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = b.row(k);
            for (j, &bkj) in brow.iter().enumerate() {
                crow[j] += aik * bkj;
            }
        }
    }
    Ok(c)
}

/// `C = Aᵀ · B` without materializing the transpose.
pub fn matmul_transa(a: &Mat, b: &Mat) -> Result<Mat> {
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_transa",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut c = Mat::zeros(a.cols(), b.cols());
    for k in 0..a.rows() {
        let arow = a.row(k);
        let brow = b.row(k);
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let crow = c.row_mut(i);
            for (j, &bkj) in brow.iter().enumerate() {
                crow[j] += aki * bkj;
            }
        }
    }
    Ok(c)
}

/// Gram matrix `AᵀA` (symmetric, PSD), exploiting symmetry.
pub fn gram(a: &Mat) -> Mat {
    let n = a.cols();
    let mut g = Mat::zeros(n, n);
    for k in 0..a.rows() {
        let row = a.row(k);
        for i in 0..n {
            let ri = row[i];
            if ri == 0.0 {
                continue;
            }
            let grow = g.row_mut(i);
            for j in i..n {
                grow[j] += ri * row[j];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..n {
        for j in 0..i {
            g[(i, j)] = g[(j, i)];
        }
    }
    g
}

/// Hadamard (element-wise) product `A ∗ B`.
pub fn hadamard(a: &Mat, b: &Mat) -> Result<Mat> {
    if a.shape() != b.shape() {
        return Err(LinalgError::DimensionMismatch {
            op: "hadamard",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut c = a.clone();
    hadamard_assign(&mut c, b)?;
    Ok(c)
}

/// In-place Hadamard product `A ∗= B`.
pub fn hadamard_assign(a: &mut Mat, b: &Mat) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(LinalgError::DimensionMismatch {
            op: "hadamard_assign",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    a.as_mut_slice().iter_mut().zip(b.as_slice()).for_each(|(x, &y)| *x *= y);
    Ok(())
}

/// Hadamard product of a sequence of equally-shaped matrices.
///
/// Returns the identity-like all-ones matrix if `mats` is empty and a shape
/// cannot be inferred, hence `shape` must be supplied by the caller.
pub fn hadamard_all(mats: &[&Mat], shape: (usize, usize)) -> Result<Mat> {
    let mut out = Mat::filled(shape.0, shape.1, 1.0);
    for m in mats {
        hadamard_assign(&mut out, m)?;
    }
    Ok(out)
}

/// Khatri–Rao product `A ⊙ B` (column-wise Kronecker).
///
/// For `A ∈ R^{I×R}` and `B ∈ R^{J×R}` the result is `(I·J) × R` with
/// row `i·J + j` equal to `A(i,:) ∗ B(j,:)`. This row ordering matches the
/// Kolda–Bader matricization convention used by [`crate::ops`] consumers:
/// the *first* factor's index varies slowest.
pub fn khatri_rao(a: &Mat, b: &Mat) -> Result<Mat> {
    if a.cols() != b.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "khatri_rao",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let r = a.cols();
    let mut out = Mat::zeros(a.rows() * b.rows(), r);
    for i in 0..a.rows() {
        let arow = a.row(i);
        for j in 0..b.rows() {
            let brow = b.row(j);
            let orow = out.row_mut(i * b.rows() + j);
            for k in 0..r {
                orow[k] = arow[k] * brow[k];
            }
        }
    }
    Ok(out)
}

/// Khatri–Rao product of a list of factors, folding left-to-right so that
/// the first factor's index varies slowest (`A1 ⊙ A2 ⊙ … ⊙ An`).
pub fn khatri_rao_all(mats: &[&Mat]) -> Result<Mat> {
    assert!(!mats.is_empty(), "khatri_rao_all: empty input");
    let mut acc = mats[0].clone();
    for m in &mats[1..] {
        acc = khatri_rao(&acc, m)?;
    }
    Ok(acc)
}

/// `C = A + B`.
pub fn add(a: &Mat, b: &Mat) -> Result<Mat> {
    if a.shape() != b.shape() {
        return Err(LinalgError::DimensionMismatch { op: "add", lhs: a.shape(), rhs: b.shape() });
    }
    let mut c = a.clone();
    c.as_mut_slice().iter_mut().zip(b.as_slice()).for_each(|(x, &y)| *x += y);
    Ok(c)
}

/// `C = A − B`.
pub fn sub(a: &Mat, b: &Mat) -> Result<Mat> {
    if a.shape() != b.shape() {
        return Err(LinalgError::DimensionMismatch { op: "sub", lhs: a.shape(), rhs: b.shape() });
    }
    let mut c = a.clone();
    c.as_mut_slice().iter_mut().zip(b.as_slice()).for_each(|(x, &y)| *x -= y);
    Ok(c)
}

/// Dot product of two equal-length slices.
///
/// Accumulates in four independent lanes (width-4 blocks plus a scalar
/// tail) so the reduction has no loop-carried dependency chain and
/// autovectorizes on stable Rust. The lane split reassociates the sum,
/// which moves results by at most the workspace-wide ≤1e-12
/// fp-reassociation bound relative to a strictly sequential sum; every
/// caller sees the *same* association on every run, so bitwise
/// run-to-run determinism is unaffected.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        s0 += xa[0] * xb[0];
        s1 += xa[1] * xb[1];
        s2 += xa[2] * xb[2];
        s3 += xa[3] * xb[3];
    }
    let mut tail = 0.0f64;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// `y += alpha * x` over slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    y.iter_mut().zip(x).for_each(|(yi, &xi)| *yi += alpha * xi);
}

/// Element-wise product accumulation: `acc[k] *= row[k]`.
#[inline]
pub fn had_in(acc: &mut [f64], row: &[f64]) {
    debug_assert_eq!(acc.len(), row.len());
    acc.iter_mut().zip(row).for_each(|(a, &r)| *a *= r);
}

/// `out = row · M` for a row vector and matrix (`out[k] = Σ_r row[r]·M[r,k]`).
pub fn row_times_mat(row: &[f64], m: &Mat, out: &mut [f64]) {
    debug_assert_eq!(row.len(), m.rows());
    debug_assert_eq!(out.len(), m.cols());
    out.iter_mut().for_each(|x| *x = 0.0);
    for (r, &v) in row.iter().enumerate() {
        if v == 0.0 {
            continue;
        }
        axpy(v, m.row(r), out);
    }
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approx(a: &Mat, b: &Mat, tol: f64) -> bool {
        a.shape() == b.shape()
            && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_small_known() {
        let a = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        let b = Mat::from_rows(&[&[5., 6.], &[7., 8.]]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c, Mat::from_rows(&[&[19., 22.], &[43., 50.]]));
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(matches!(matmul(&a, &b), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mat::random(&mut rng, 4, 4, 1.0);
        let c = matmul(&a, &Mat::identity(4)).unwrap();
        assert!(approx(&a, &c, 1e-14));
    }

    #[test]
    fn transa_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Mat::random(&mut rng, 5, 3, 1.0);
        let b = Mat::random(&mut rng, 5, 4, 1.0);
        let c1 = matmul_transa(&a, &b).unwrap();
        let c2 = matmul(&a.transpose(), &b).unwrap();
        assert!(approx(&c1, &c2, 1e-12));
    }

    #[test]
    fn gram_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Mat::random(&mut rng, 6, 4, 1.0);
        let g1 = gram(&a);
        let g2 = matmul(&a.transpose(), &a).unwrap();
        assert!(approx(&g1, &g2, 1e-12));
        // Symmetry.
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(g1[(i, j)], g1[(j, i)]);
            }
        }
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        let b = Mat::from_rows(&[&[2., 0.5], &[1., 2.]]);
        let c = hadamard(&a, &b).unwrap();
        assert_eq!(c, Mat::from_rows(&[&[2., 1.], &[3., 8.]]));
        assert!(hadamard(&a, &Mat::zeros(1, 2)).is_err());
    }

    #[test]
    fn hadamard_all_identity_when_empty() {
        let c = hadamard_all(&[], (2, 2)).unwrap();
        assert_eq!(c, Mat::filled(2, 2, 1.0));
    }

    #[test]
    fn khatri_rao_shape_and_values() {
        let a = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        let b = Mat::from_rows(&[&[5., 6.], &[7., 8.], &[9., 10.]]);
        let k = khatri_rao(&a, &b).unwrap();
        assert_eq!(k.shape(), (6, 2));
        // Row (i=0, j=0) = [1*5, 2*6]
        assert_eq!(k.row(0), &[5., 12.]);
        // Row (i=1, j=2) lives at 1*3+2 = 5 = [3*9, 4*10]
        assert_eq!(k.row(5), &[27., 40.]);
    }

    #[test]
    fn khatri_rao_gram_identity() {
        // The key identity behind Eq. (8) of the paper:
        // (A ⊙ B)ᵀ (A ⊙ B) = AᵀA ∗ BᵀB.
        let mut rng = StdRng::seed_from_u64(4);
        let a = Mat::random(&mut rng, 5, 3, 1.0);
        let b = Mat::random(&mut rng, 4, 3, 1.0);
        let k = khatri_rao(&a, &b).unwrap();
        let lhs = gram(&k);
        let rhs = hadamard(&gram(&a), &gram(&b)).unwrap();
        assert!(approx(&lhs, &rhs, 1e-10));
    }

    #[test]
    fn khatri_rao_all_folds_left() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Mat::random(&mut rng, 2, 2, 1.0);
        let b = Mat::random(&mut rng, 3, 2, 1.0);
        let c = Mat::random(&mut rng, 4, 2, 1.0);
        let k1 = khatri_rao_all(&[&a, &b, &c]).unwrap();
        let k2 = khatri_rao(&khatri_rao(&a, &b).unwrap(), &c).unwrap();
        assert!(approx(&k1, &k2, 1e-14));
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Mat::random(&mut rng, 3, 3, 1.0);
        let b = Mat::random(&mut rng, 3, 3, 1.0);
        let c = sub(&add(&a, &b).unwrap(), &b).unwrap();
        assert!(approx(&a, &c, 1e-14));
        assert!(add(&a, &Mat::zeros(2, 3)).is_err());
        assert!(sub(&a, &Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn slice_kernels() {
        let a = [1., 2., 3.];
        let b = [4., 5., 6.];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = [1., 1., 1.];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3., 5., 7.]);
        let mut acc = [2., 2., 2.];
        had_in(&mut acc, &a);
        assert_eq!(acc, [2., 4., 6.]);
        assert!((norm2(&[3., 4.]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn row_times_mat_matches_matmul() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Mat::random(&mut rng, 3, 4, 1.0);
        let row = [1.0, -2.0, 0.5];
        let mut out = [0.0; 4];
        row_times_mat(&row, &m, &mut out);
        let rowmat = Mat::from_rows(&[&row]);
        let expect = matmul(&rowmat, &m).unwrap();
        for k in 0..4 {
            assert!((out[k] - expect[(0, k)]).abs() < 1e-14);
        }
    }
}
