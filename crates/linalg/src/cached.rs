//! Cached symmetric-PSD factorizations for repeated row solves.
//!
//! Every per-event update in SliceNStitch solves `x = u · H†` against a
//! Hadamard-of-Grams matrix `H(m)` (Eq. 12 / Eq. 4). Consecutive solves
//! frequently see the *same* `H` — two time-mode rows of one shift event,
//! or events whose row updates left a factor (and hence its Gram)
//! untouched — so refactorizing per solve wastes the `O(R³)` Cholesky.
//! [`SymSolveCache`] owns the factorization storage: callers refactor only
//! when the underlying matrix actually changed and solve as many
//! right-hand sides as they like, with zero allocation in steady state.

use crate::chol::cholesky_into_inv;
use crate::ops::{dot, row_times_mat};
use crate::pinv::pinv_sym;
use crate::Mat;

/// Forward substitution `L·y = b` using precomputed diagonal reciprocals.
#[inline]
fn forward_sub_inv(l: &Mat, inv_diag: &[f64], b: &mut [f64]) {
    let n = l.rows();
    debug_assert_eq!(b.len(), n);
    for i in 0..n {
        let row = l.row(i);
        let (head, tail) = b.split_at_mut(i);
        tail[0] = (tail[0] - dot(&row[..i], head)) * inv_diag[i];
    }
}

/// Backward substitution `Lᵀ·x = y` over the row-major transpose `Lᵀ`,
/// using precomputed diagonal reciprocals.
#[inline]
fn backward_sub_upper_inv(lt: &Mat, inv_diag: &[f64], y: &mut [f64]) {
    let n = lt.rows();
    debug_assert_eq!(y.len(), n);
    for i in (0..n).rev() {
        let row = lt.row(i);
        let (head, tail) = y.split_at_mut(i + 1);
        head[i] = (head[i] - dot(&row[i + 1..], tail)) * inv_diag[i];
    }
}

/// The factorization state held by a [`SymSolveCache`].
#[derive(Debug, Clone)]
enum SymFactor {
    /// No factorization yet ([`SymSolveCache::refactor`] not called).
    Empty,
    /// Cholesky `H = L·Lᵀ`, with `Lᵀ` materialized row-major so both
    /// substitution sweeps run over contiguous slices.
    Chol,
    /// `H` was numerically rank-deficient: truncated pseudoinverse `H†`
    /// (stored in `lt`), matching the fallback of
    /// [`solve_row_sym`](crate::lstsq::solve_row_sym).
    Pinv,
}

/// A reusable factorization of one symmetric PSD matrix.
///
/// `refactor` + `solve_row` reproduce
/// [`solve_row_sym`](crate::lstsq::solve_row_sym) exactly (same pivot
/// tolerance → same Cholesky-vs-pseudoinverse decision, same substitution
/// order), but split the factorization from the solve so it can be reused
/// across right-hand sides and cached across events.
#[derive(Debug, Clone)]
pub struct SymSolveCache {
    kind: SymFactor,
    /// Cholesky factor `L` (valid when `kind == Chol`).
    l: Mat,
    /// `Lᵀ` for `Chol`; `H†` for `Pinv`.
    lt: Mat,
    /// Reciprocals of `L`'s diagonal (valid when `kind == Chol`):
    /// substitution divides become multiplies.
    inv_diag: Vec<f64>,
}

impl Default for SymSolveCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SymSolveCache {
    /// An empty cache; call [`SymSolveCache::refactor`] before solving.
    pub fn new() -> Self {
        SymSolveCache {
            kind: SymFactor::Empty,
            l: Mat::zeros(0, 0),
            lt: Mat::zeros(0, 0),
            inv_diag: Vec::new(),
        }
    }

    /// True once a factorization is held.
    pub fn is_factored(&self) -> bool {
        !matches!(self.kind, SymFactor::Empty)
    }

    /// Factorizes `h` (Cholesky with relative pivot tolerance `rel_tol`,
    /// truncated-pseudoinverse fallback for rank-deficient systems),
    /// reusing this cache's storage. Allocation-free after the first call
    /// at a given size, except on the cold pseudoinverse path.
    pub fn refactor(&mut self, h: &Mat, rel_tol: f64) {
        debug_assert_eq!(h.rows(), h.cols());
        match cholesky_into_inv(h, rel_tol, &mut self.l, &mut self.inv_diag) {
            Ok(()) => {
                // Backward substitution reads only `Lᵀ`'s strict upper
                // triangle (contiguous row tails) plus `inv_diag`, so only
                // that triangle is materialized.
                let n = self.l.rows();
                self.lt.resize_to(n, n);
                for i in 0..n {
                    for k in i + 1..n {
                        self.lt[(i, k)] = self.l[(k, i)];
                    }
                }
                self.kind = SymFactor::Chol;
            }
            Err(_) => {
                // Near-singular: zero the tiny eigendirections instead of
                // amplifying through them (same policy as solve_row_sym).
                self.lt = pinv_sym(h).expect("finite symmetric system");
                self.kind = SymFactor::Pinv;
            }
        }
    }

    /// Solves `out = u · H†` for the matrix last passed to `refactor`.
    ///
    /// # Panics
    /// Panics if `refactor` has not been called.
    pub fn solve_row(&self, u: &[f64], out: &mut [f64]) {
        match self.kind {
            SymFactor::Chol => {
                debug_assert_eq!(u.len(), self.l.rows());
                debug_assert_eq!(out.len(), self.l.rows());
                out.copy_from_slice(u);
                forward_sub_inv(&self.l, &self.inv_diag, out);
                backward_sub_upper_inv(&self.lt, &self.inv_diag, out);
            }
            SymFactor::Pinv => row_times_mat(u, &self.lt, out),
            SymFactor::Empty => panic!("SymSolveCache::solve_row before refactor"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstsq::{solve_row_sym, GRAM_PIVOT_RTOL};
    use crate::ops::{gram, matmul};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_fresh_solve_well_conditioned() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mat::random(&mut rng, 12, 5, 1.0);
        let mut h = gram(&a);
        for i in 0..5 {
            h[(i, i)] += 0.1;
        }
        let mut cache = SymSolveCache::new();
        assert!(!cache.is_factored());
        cache.refactor(&h, GRAM_PIVOT_RTOL);
        assert!(cache.is_factored());
        for _ in 0..4 {
            let u: Vec<f64> = (0..5).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
            let mut fast = vec![0.0; 5];
            let mut slow = vec![0.0; 5];
            cache.solve_row(&u, &mut fast);
            solve_row_sym(&h, &u, &mut slow);
            for k in 0..5 {
                assert!((fast[k] - slow[k]).abs() < 1e-12, "{} vs {}", fast[k], slow[k]);
            }
        }
    }

    #[test]
    fn falls_back_to_pinv_on_singular() {
        let v = Mat::from_rows(&[&[1.0], &[2.0]]);
        let h = matmul(&v, &v.transpose()).unwrap(); // rank 1
        let mut cache = SymSolveCache::new();
        cache.refactor(&h, GRAM_PIVOT_RTOL);
        let u = [1.0, 2.0]; // in the row space
        let mut out = [0.0; 2];
        cache.solve_row(&u, &mut out);
        let mut back = [0.0; 2];
        row_times_mat(&out, &h, &mut back);
        assert!((back[0] - 1.0).abs() < 1e-9 && (back[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn refactor_reuses_storage_across_sizes_and_kinds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cache = SymSolveCache::new();
        for n in [3usize, 5, 3] {
            let a = Mat::random(&mut rng, n + 3, n, 1.0);
            let mut h = gram(&a);
            for i in 0..n {
                h[(i, i)] += 0.2;
            }
            cache.refactor(&h, GRAM_PIVOT_RTOL);
            let u: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            let mut fast = vec![0.0; n];
            let mut slow = vec![0.0; n];
            cache.solve_row(&u, &mut fast);
            solve_row_sym(&h, &u, &mut slow);
            for k in 0..n {
                assert!((fast[k] - slow[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "before refactor")]
    fn solving_empty_cache_panics() {
        let cache = SymSolveCache::new();
        let mut out = [0.0; 2];
        cache.solve_row(&[1.0, 2.0], &mut out);
    }
}
