//! Moore–Penrose pseudoinverse.
//!
//! The paper's update rules apply `H†` where `H = ∗_{n≠m} A(n)ᵀA(n)` is a
//! symmetric PSD `R × R` matrix that can be rank-deficient (e.g. when a
//! factor column collapses). [`pinv_sym`] computes `H†` through the Jacobi
//! eigendecomposition with a relative spectral cutoff; [`pinv`] handles
//! general rectangular matrices through the Gram trick for completeness.

use crate::eigen::eigen_sym;
use crate::ops::{matmul, matmul_transa};
use crate::{LinalgError, Mat, Result, EPS_FACTOR};

/// Pseudoinverse of a symmetric matrix via eigendecomposition.
///
/// Eigenvalues with `|λ| ≤ max|λ| · n · EPS_FACTOR` are treated as zero,
/// which makes the result stable under the tiny negative eigenvalues that
/// floating-point Gram computations produce.
pub fn pinv_sym(a: &Mat) -> Result<Mat> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { op: "pinv_sym", shape: a.shape() });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Mat::zeros(0, 0));
    }
    let e = eigen_sym(a)?;
    let max_abs = e.values.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    let cutoff = max_abs * n as f64 * EPS_FACTOR;
    // A† = V · diag(1/λ or 0) · Vᵀ
    let mut out = Mat::zeros(n, n);
    for k in 0..n {
        let lam = e.values[k];
        if lam.abs() <= cutoff {
            continue;
        }
        let inv = 1.0 / lam;
        // out += inv * v_k v_kᵀ  (rank-1 update, exploiting symmetry)
        for i in 0..n {
            let vik = e.vectors[(i, k)];
            if vik == 0.0 {
                continue;
            }
            let w = inv * vik;
            for j in 0..n {
                out[(i, j)] += w * e.vectors[(j, k)];
            }
        }
    }
    Ok(out)
}

/// Pseudoinverse of a general rectangular matrix.
///
/// Uses `A† = (AᵀA)† Aᵀ` when `rows ≥ cols` and `A† = Aᵀ (AAᵀ)†`
/// otherwise. Accurate enough for the small, well-scaled systems in this
/// workspace; the streaming algorithms themselves only ever need
/// [`pinv_sym`].
pub fn pinv(a: &Mat) -> Result<Mat> {
    if a.rows() == 0 || a.cols() == 0 {
        return Ok(Mat::zeros(a.cols(), a.rows()));
    }
    if a.rows() >= a.cols() {
        let g = matmul_transa(a, a)?; // AᵀA
        let gi = pinv_sym(&g)?;
        matmul(&gi, &a.transpose())
    } else {
        let g = matmul(a, &a.transpose())?; // AAᵀ
        let gi = pinv_sym(&g)?;
        matmul(&a.transpose(), &gi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approx(a: &Mat, b: &Mat, tol: f64) -> bool {
        a.shape() == b.shape()
            && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
    }

    /// Checks the four Penrose conditions.
    fn penrose(a: &Mat, p: &Mat, tol: f64) {
        let apa = matmul(&matmul(a, p).unwrap(), a).unwrap();
        assert!(approx(&apa, a, tol), "A·A†·A = A failed");
        let pap = matmul(&matmul(p, a).unwrap(), p).unwrap();
        assert!(approx(&pap, p, tol), "A†·A·A† = A† failed");
        let ap = matmul(a, p).unwrap();
        assert!(approx(&ap, &ap.transpose(), tol), "A·A† symmetric failed");
        let pa = matmul(p, a).unwrap();
        assert!(approx(&pa, &pa.transpose(), tol), "A†·A symmetric failed");
    }

    #[test]
    fn pinv_sym_inverts_nonsingular() {
        let mut rng = StdRng::seed_from_u64(21);
        let b = Mat::random(&mut rng, 8, 5, 1.0);
        let mut g = gram(&b);
        for i in 0..5 {
            g[(i, i)] += 0.5;
        }
        let gi = pinv_sym(&g).unwrap();
        let prod = matmul(&g, &gi).unwrap();
        assert!(approx(&prod, &Mat::identity(5), 1e-9));
    }

    #[test]
    fn pinv_sym_rank_deficient() {
        // Rank-1: vvᵀ with v = [1,2]. Pseudoinverse is vvᵀ / ‖v‖⁴.
        let v = Mat::from_rows(&[&[1.0], &[2.0]]);
        let a = matmul(&v, &v.transpose()).unwrap();
        let p = pinv_sym(&a).unwrap();
        penrose(&a, &p, 1e-10);
        assert!((p[(0, 0)] - 1.0 / 25.0).abs() < 1e-12);
        assert!((p[(1, 1)] - 4.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn pinv_sym_zero_matrix_is_zero() {
        let p = pinv_sym(&Mat::zeros(4, 4)).unwrap();
        assert_eq!(p.frob_norm(), 0.0);
    }

    #[test]
    fn pinv_sym_rejects_non_square() {
        assert!(pinv_sym(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn pinv_tall_and_wide_penrose() {
        let mut rng = StdRng::seed_from_u64(22);
        let tall = Mat::random(&mut rng, 7, 3, 1.0);
        penrose(&tall, &pinv(&tall).unwrap(), 1e-8);
        let wide = Mat::random(&mut rng, 3, 7, 1.0);
        penrose(&wide, &pinv(&wide).unwrap(), 1e-8);
    }

    #[test]
    fn pinv_of_identity_is_identity() {
        let p = pinv(&Mat::identity(4)).unwrap();
        assert!(approx(&p, &Mat::identity(4), 1e-10));
    }

    #[test]
    fn pinv_empty_shapes() {
        let p = pinv(&Mat::zeros(0, 3)).unwrap();
        assert_eq!(p.shape(), (3, 0));
        let p = pinv(&Mat::zeros(3, 0)).unwrap();
        assert_eq!(p.shape(), (0, 3));
        let p = pinv_sym(&Mat::zeros(0, 0)).unwrap();
        assert_eq!(p.shape(), (0, 0));
    }

    #[test]
    fn pinv_sym_ignores_float_noise_negative_eigs() {
        // A PSD matrix perturbed by tiny asymmetric noise must still produce
        // a finite pseudoinverse.
        let mut rng = StdRng::seed_from_u64(23);
        let b = Mat::random(&mut rng, 6, 4, 1.0);
        let mut g = gram(&b);
        g[(0, 1)] += 1e-16;
        let p = pinv_sym(&g).unwrap();
        assert!(p.is_finite());
    }
}
