//! Property-based tests for the dense linear-algebra substrate.
//!
//! These check the algebraic identities the streaming algorithms rely on,
//! over randomly generated matrices.

use proptest::prelude::*;
use sns_linalg::ops::{gram, hadamard, khatri_rao, matmul, matmul_transa};
use sns_linalg::pinv::{pinv, pinv_sym};
use sns_linalg::Mat;

fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Mat::from_vec(rows, cols, v))
}

fn approx(a: &Mat, b: &Mat, tol: f64) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (AB)C = A(BC) for compatible shapes.
    #[test]
    fn matmul_is_associative(a in mat_strategy(3, 4), b in mat_strategy(4, 5), c in mat_strategy(5, 2)) {
        let left = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
        let right = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
        prop_assert!(approx(&left, &right, 1e-8));
    }

    /// AᵀB computed fused equals the explicit transpose product.
    #[test]
    fn transa_consistent(a in mat_strategy(6, 3), b in mat_strategy(6, 4)) {
        let fused = matmul_transa(&a, &b).unwrap();
        let explicit = matmul(&a.transpose(), &b).unwrap();
        prop_assert!(approx(&fused, &explicit, 1e-9));
    }

    /// Gram matrices are symmetric PSD (non-negative Rayleigh quotients on
    /// the canonical basis and random vectors).
    #[test]
    fn gram_is_psd(a in mat_strategy(7, 4), v in proptest::collection::vec(-1.0f64..1.0, 4)) {
        let g = gram(&a);
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
            }
        }
        // vᵀGv = ‖Av‖² ≥ 0
        let mut quad = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                quad += v[i] * g[(i, j)] * v[j];
            }
        }
        prop_assert!(quad >= -1e-8);
    }

    /// The Khatri–Rao Gram identity (A⊙B)ᵀ(A⊙B) = AᵀA ∗ BᵀB — Eq. (8)
    /// of the paper, the backbone of every fast update rule.
    #[test]
    fn khatri_rao_gram_identity(a in mat_strategy(5, 3), b in mat_strategy(6, 3)) {
        let k = khatri_rao(&a, &b).unwrap();
        let lhs = gram(&k);
        let rhs = hadamard(&gram(&a), &gram(&b)).unwrap();
        prop_assert!(approx(&lhs, &rhs, 1e-7));
    }

    /// Penrose condition 1 for the symmetric pseudoinverse: H·H†·H = H.
    #[test]
    fn pinv_sym_penrose1(a in mat_strategy(6, 4)) {
        let h = gram(&a);
        let p = pinv_sym(&h).unwrap();
        let hph = matmul(&matmul(&h, &p).unwrap(), &h).unwrap();
        let tol = 1e-6 * (1.0 + h.max_abs() * h.max_abs());
        prop_assert!(approx(&hph, &h, tol));
    }

    /// Penrose conditions for the general pseudoinverse on tall matrices.
    #[test]
    fn pinv_penrose(a in mat_strategy(6, 3)) {
        let p = pinv(&a).unwrap();
        let apa = matmul(&matmul(&a, &p).unwrap(), &a).unwrap();
        let tol = 1e-5 * (1.0 + a.max_abs().powi(3));
        prop_assert!(approx(&apa, &a, tol));
        let pap = matmul(&matmul(&p, &a).unwrap(), &p).unwrap();
        let ptol = 1e-5 * (1.0 + p.max_abs().powi(3));
        prop_assert!(approx(&pap, &p, ptol));
    }

    /// Cholesky solve agrees with pinv solve on well-conditioned SPD systems.
    #[test]
    fn chol_and_pinv_agree(a in mat_strategy(8, 4), b in mat_strategy(4, 2)) {
        let mut g = gram(&a);
        for i in 0..4 { g[(i, i)] += 1.0; } // well-conditioned
        let x1 = sns_linalg::chol::solve_spd(&g, &b).unwrap();
        let x2 = matmul(&pinv_sym(&g).unwrap(), &b).unwrap();
        prop_assert!(approx(&x1, &x2, 1e-6));
    }

    /// Eigendecomposition reconstructs the matrix and preserves the trace.
    #[test]
    fn eigen_reconstructs(a in mat_strategy(5, 5)) {
        // Symmetrize.
        let s = Mat::from_fn(5, 5, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let e = sns_linalg::eigen::eigen_sym(&s).unwrap();
        let d = Mat::from_fn(5, 5, |i, j| if i == j { e.values[i] } else { 0.0 });
        let rec = matmul(&matmul(&e.vectors, &d).unwrap(), &e.vectors.transpose()).unwrap();
        prop_assert!(approx(&rec, &s, 1e-7 * (1.0 + s.max_abs())));
        let tr: f64 = (0..5).map(|i| s[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((tr - sum).abs() < 1e-7 * (1.0 + tr.abs()));
    }
}
