//! Property-based tests pinning the event-bus semantics the pool's hot
//! path relies on:
//!
//! - **publishers never block and never buffer unboundedly** — a
//!   completely stalled subscriber costs at most `capacity` retained
//!   events, with every older event dropped (oldest first) and
//!   accounted for;
//! - **lag is observable, not silent** — a lagging subscriber receives
//!   a `Lagged` gap marker whose `missed` count conserves events
//!   (observed + missed = published);
//! - **per-publisher order is causal** — each publisher's events are
//!   observed in publication order even across lag gaps and concurrent
//!   publishers, mirroring the per-stream event-order guarantee (a
//!   stream's lifecycle events are all published by its shard worker).

use proptest::prelude::*;
use sns_ops::{BusItem, EventBus};

/// Tallies one drained batch: per-publisher observed sequence numbers
/// (in observation order) plus the summed lag gap.
fn absorb(items: Vec<BusItem<(usize, u64)>>, seen: &mut [Vec<u64>], missed: &mut u64) -> usize {
    let mut observed = 0;
    for item in items {
        match item {
            BusItem::Lagged { missed: m } => *missed += m,
            BusItem::Event(e) => {
                let (publisher, seq) = *e;
                seen[publisher].push(seq);
                observed += 1;
            }
        }
    }
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A subscriber that never reads cannot block or bloat the bus:
    /// every publish completes, the ring never holds more than
    /// `capacity` events, the overflow is dropped oldest-first, and the
    /// first read reports the exact gap before delivering the newest
    /// `capacity` events in order.
    #[test]
    fn stalled_subscriber_never_blocks_publishers(
        capacity in 1usize..24,
        total in 0usize..200,
    ) {
        let bus: EventBus<(usize, u64)> = EventBus::new(capacity);
        let mut sub = bus.subscribe();
        for seq in 0..total as u64 {
            // Never blocks by construction; if it deadlocked the test
            // would hang, so termination itself is part of the property.
            prop_assert!(bus.publish((0, seq)));
        }
        let stats = bus.stats();
        prop_assert_eq!(stats.published, total as u64);
        prop_assert_eq!(stats.depth, total.min(capacity));
        prop_assert_eq!(stats.dropped, total.saturating_sub(capacity) as u64);

        let mut seen = vec![Vec::new()];
        let mut missed = 0u64;
        absorb(sub.drain(), &mut seen, &mut missed);
        prop_assert_eq!(missed, stats.dropped);
        prop_assert_eq!(seen[0].len() + missed as usize, total);
        // The retained tail is the newest events, still in order.
        let expect: Vec<u64> = (missed..total as u64).collect();
        prop_assert_eq!(&seen[0], &expect);
    }

    /// Concurrent publishers with a concurrently draining (and
    /// possibly lagging) subscriber: no event is silently lost
    /// (observed + missed = published), and each publisher's events are
    /// observed in strictly increasing publication order — the
    /// per-stream causal-order guarantee.
    #[test]
    fn concurrent_lagging_reads_conserve_and_stay_causal(
        capacity in 1usize..16,
        publishers in 1usize..4,
        per_publisher in 0usize..120,
        read_pause_us in 0u64..200,
    ) {
        let bus: EventBus<(usize, u64)> = EventBus::new(capacity);
        let mut sub = bus.subscribe();
        let mut seen: Vec<Vec<u64>> = vec![Vec::new(); publishers];
        let mut missed = 0u64;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..publishers)
                .map(|p| {
                    let bus = bus.clone();
                    scope.spawn(move || {
                        for seq in 0..per_publisher as u64 {
                            bus.publish((p, seq));
                        }
                    })
                })
                .collect();
            // Interleave lag-prone reads with the publishers; the pause
            // makes the subscriber fall behind small rings.
            while handles.iter().any(|h| !h.is_finished()) {
                absorb(sub.drain(), &mut seen, &mut missed);
                if read_pause_us > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(read_pause_us));
                }
            }
            for h in handles {
                h.join().expect("publisher panicked");
            }
        });
        absorb(sub.drain(), &mut seen, &mut missed);

        let total = (publishers * per_publisher) as u64;
        prop_assert_eq!(bus.stats().published, total);
        let observed: usize = seen.iter().map(Vec::len).sum();
        prop_assert_eq!(observed as u64 + missed, total);
        for (p, seqs) in seen.iter().enumerate() {
            prop_assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "publisher {} observed out of order: {:?}", p, seqs
            );
        }
    }

    /// Dropping the only subscriber flips the bus back to its
    /// zero-cost mode: publishes are counted but not retained, and a
    /// later subscriber starts at "now" — it observes exactly the
    /// events published after it subscribed, in order, with no gap
    /// marker for the unsubscribed era.
    #[test]
    fn dropped_subscriber_costs_nothing_and_resubscribe_starts_at_now(
        capacity in 1usize..16,
        before in 0usize..50,
        after in 0usize..50,
    ) {
        let bus: EventBus<(usize, u64)> = EventBus::new(capacity);
        let sub = bus.subscribe();
        drop(sub);
        for seq in 0..before as u64 {
            prop_assert!(!bus.publish((0, seq)), "unsubscribed publish must not enter the ring");
        }
        prop_assert_eq!(bus.stats().depth, 0);

        let mut sub = bus.subscribe();
        for seq in 0..after as u64 {
            prop_assert!(bus.publish((1, seq)));
        }
        let mut seen = vec![Vec::new(), Vec::new()];
        let mut missed = 0u64;
        absorb(sub.drain(), &mut seen, &mut missed);
        prop_assert_eq!(missed, after.saturating_sub(capacity) as u64);
        prop_assert!(seen[0].is_empty(), "must not see pre-subscription events");
        let expect: Vec<u64> = (missed..after as u64).collect();
        prop_assert_eq!(&seen[1], &expect);
    }
}
