//! # sns-ops
//!
//! The operability surface of the SliceNStitch runtime: everything an
//! operator needs to *observe and react to* a pool serving many
//! concurrent tensor streams, without touching the numeric hot path.
//!
//! Three independent layers, composed by `sns-runtime`:
//!
//! - [`bus`] — a bounded, in-process broadcast [`EventBus`] carrying
//!   typed lifecycle [`PoolEvent`]s (stream opened/evicted/migrated,
//!   checkpoint committed, backpressure onset/relief, anomaly flagged,
//!   tuple quarantined). Publishing never blocks: when nobody is
//!   subscribed it is a single atomic load, and a slow subscriber lags
//!   (drop-oldest) instead of exerting backpressure on pool workers.
//! - [`metrics`] — a [`MetricsRegistry`] of per-stream and per-shard
//!   atomic counters, log₂-bucketed ingest-latency histograms
//!   (p50/p99/p999), and queue-depth gauges, exportable as JSON
//!   ([`MetricsRegistry::dump`]) or plain text
//!   ([`MetricsRegistry::render_text`]).
//! - [`dlq`] — a generic [`DeadLetterQueue`]: a batch that panicked or
//!   poisoned an engine is recorded with full context (tuples, spec,
//!   error) so the stream keeps serving and the batch can be repaired
//!   and replayed deterministically later.
//!
//! The crate sits *below* the runtime (it depends only on `sns-error`
//! and `sns-stream`), so the pool can publish into it without a
//! dependency cycle; anything engine-specific (the spec type carried by
//! dead letters) is a generic parameter.

#![deny(missing_docs)]

pub mod bus;
pub mod clock;
pub mod dlq;
pub mod event;
pub mod metrics;

pub use bus::{BusItem, BusStats, EventBus, Subscription};
pub use dlq::{DeadLetter, DeadLetterQueue, DlqStats, QuarantinedOp};
pub use event::{EvictReason, PoolEvent};
pub use metrics::{HistogramSnapshot, MetricsRegistry, ShardMetrics, StreamMetrics};
