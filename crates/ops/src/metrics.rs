//! Per-stream / per-shard counters, latency histograms, queue gauges.
//!
//! Everything here is updated with relaxed atomics from the hot path —
//! a metrics update is a handful of uncontended `fetch_add`s, never a
//! lock. Snapshots ([`MetricsRegistry::dump`]) read the same atomics
//! without stopping writers, so a dump taken mid-traffic is internally
//! *approximate* (counters may be a few events apart) but every
//! individual counter is exact.
//!
//! Latencies use a log₂-bucketed histogram over nanoseconds: bucket `i`
//! holds durations whose bit length is `i`, so quantiles are exact to a
//! factor of 2 across the full range (1 ns … ~9 min) with 40 fixed
//! `AtomicU64` buckets and no allocation on record.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use crate::bus::BusStats;
use crate::dlq::DlqStats;

const BUCKETS: usize = 40;

/// Lock-free log₂ latency histogram (nanosecond domain).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn index(ns: u64) -> usize {
        ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Reads a consistent-enough snapshot with quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let max_ns = self.max_ns.load(Ordering::Relaxed);
        let quantile = |p: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let target = ((p * count as f64).ceil() as u64).clamp(1, count);
            let mut cum = 0u64;
            for (i, c) in counts.iter().enumerate() {
                cum += c;
                if cum >= target {
                    // Upper bound of bucket i (bit length i) is 2^i - 1 ns.
                    let upper_ns = if i >= 63 { u64::MAX } else { (1u64 << i).saturating_sub(1) };
                    return upper_ns.min(max_ns) as f64 / 1_000.0;
                }
            }
            max_ns as f64 / 1_000.0
        };
        HistogramSnapshot {
            count,
            mean_us: if count == 0 { 0.0 } else { sum_ns as f64 / count as f64 / 1_000.0 },
            p50_us: quantile(0.50),
            p99_us: quantile(0.99),
            p999_us: quantile(0.999),
            max_us: max_ns as f64 / 1_000.0,
        }
    }
}

/// Point-in-time view of a [`Histogram`] (microsecond units).
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "a snapshot is taken to be read; discarding it hides the measurement"]
pub struct HistogramSnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median (upper bound of its log₂ bucket).
    pub p50_us: f64,
    /// 99th percentile (upper bound of its log₂ bucket).
    pub p99_us: f64,
    /// 99.9th percentile (upper bound of its log₂ bucket).
    pub p999_us: f64,
    /// Largest recorded sample (exact).
    pub max_us: f64,
}

/// Counters of one stream. All updates are relaxed atomics.
#[derive(Debug, Default)]
pub struct StreamMetrics {
    /// Shard currently hosting the stream (updated on open/migrate).
    pub shard: AtomicUsize,
    /// Batches acknowledged successfully.
    pub batches: AtomicU64,
    /// Tuples accepted across all batches.
    pub tuples: AtomicU64,
    /// Factor updates applied.
    pub updates: AtomicU64,
    /// Batches that came back with an error receipt.
    pub errors: AtomicU64,
    /// Batches diverted to the dead-letter queue.
    pub quarantined: AtomicU64,
    /// Quarantined batches successfully replayed after repair.
    pub replayed: AtomicU64,
    /// Enqueue→ack latency of acknowledged batches.
    pub latency: Histogram,
}

/// Counters and gauges of one shard worker.
#[derive(Debug)]
pub struct ShardMetrics {
    /// Commands currently enqueued (gauge; sessions inc, worker dec).
    pub queue_depth: AtomicI64,
    /// Configured queue capacity (commands).
    pub queue_capacity: usize,
    /// Commands processed by the worker.
    pub commands: AtomicU64,
    /// Coalesced ingest groups executed (one group = one drain of
    /// consecutive same-stream ingest commands driven through a single
    /// engine call; `commands / ingest_groups` is the coalescing factor).
    pub ingest_groups: AtomicU64,
    /// Engine panics caught on this shard.
    pub panics: AtomicU64,
    /// Checkpoints committed that covered this shard (pool-wide sweeps
    /// and per-shard background commits both count).
    pub checkpoints: AtomicU64,
}

impl ShardMetrics {
    fn new(queue_capacity: usize) -> Self {
        ShardMetrics {
            queue_depth: AtomicI64::new(0),
            queue_capacity,
            commands: AtomicU64::new(0),
            ingest_groups: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
        }
    }

    /// Current queue depth, clamped at 0 (inc/dec race tolerantly).
    pub fn depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed).max(0) as usize
    }
}

/// The pool's metrics surface: per-shard gauges plus lazily created
/// per-stream counter blocks. Cloning is cheap; clones share state.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

/// Pads a per-shard block out to its own 128-byte alignment boundary
/// so adjacent shards' hottest counters (`queue_depth`, `commands`)
/// never share a cache line — each worker's relaxed `fetch_add`s stay
/// core-local instead of ping-ponging a shared line. 128 bytes covers
/// the spatial-prefetcher pair on x86 and the 128-byte lines on recent
/// aarch64.
#[derive(Debug)]
#[repr(align(128))]
struct CacheAligned<T>(T);

#[derive(Debug)]
struct RegistryInner {
    shards: Vec<CacheAligned<ShardMetrics>>,
    streams: RwLock<HashMap<u64, Arc<StreamMetrics>>>,
}

impl MetricsRegistry {
    /// Creates a registry for `shards` shards whose queues hold
    /// `queue_capacity` commands each.
    pub fn new(shards: usize, queue_capacity: usize) -> Self {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                shards: (0..shards)
                    .map(|_| CacheAligned(ShardMetrics::new(queue_capacity)))
                    .collect(),
                streams: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// The per-shard block (panics on an out-of-range shard — the pool
    /// validates shard indices before they reach metrics).
    pub fn shard(&self, shard: usize) -> &ShardMetrics {
        &self.inner.shards[shard].0
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The per-stream block, created on first touch. Blocks survive
    /// stream eviction so post-mortem dumps still answer questions.
    pub fn stream(&self, stream_id: u64) -> Arc<StreamMetrics> {
        if let Some(m) =
            self.inner.streams.read().expect("stream-metrics map poisoned").get(&stream_id)
        {
            return Arc::clone(m);
        }
        let mut map = self.inner.streams.write().expect("stream-metrics map poisoned");
        Arc::clone(map.entry(stream_id).or_default())
    }

    /// Stream ids with metric blocks, ascending.
    pub fn stream_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .inner
            .streams
            .read()
            .expect("stream-metrics map poisoned")
            .keys()
            .copied()
            .collect();
        ids.sort_unstable();
        ids
    }

    /// JSON dump of shards + streams only (no bus/DLQ sections).
    pub fn dump(&self) -> String {
        self.dump_with(None, None)
    }

    /// Full operational JSON dump; `bus`/`dlq` sections are included
    /// when the caller provides their stats.
    pub fn dump_with(&self, bus: Option<BusStats>, dlq: Option<DlqStats>) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"metrics\":\"sns-pool\",\"shards\":[");
        for (i, s) in self.inner.shards.iter().enumerate() {
            let s = &s.0;
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{},\"queue_depth\":{},\"queue_capacity\":{},\"commands\":{},\"ingest_groups\":{},\"panics\":{},\"checkpoints\":{}}}",
                i,
                s.depth(),
                s.queue_capacity,
                s.commands.load(Ordering::Relaxed),
                s.ingest_groups.load(Ordering::Relaxed),
                s.panics.load(Ordering::Relaxed),
                s.checkpoints.load(Ordering::Relaxed),
            ));
        }
        out.push_str("],\"streams\":[");
        for (n, id) in self.stream_ids().into_iter().enumerate() {
            let m = self.stream(id);
            let lat = m.latency.snapshot();
            if n > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stream_id\":{},\"shard\":{},\"batches\":{},\"tuples\":{},\"updates\":{},\
                 \"errors\":{},\"quarantined\":{},\"replayed\":{},\"latency\":{{\"count\":{},\
                 \"mean_us\":{:.3},\"p50_us\":{:.3},\"p99_us\":{:.3},\"p999_us\":{:.3},\"max_us\":{:.3}}}}}",
                id,
                m.shard.load(Ordering::Relaxed),
                m.batches.load(Ordering::Relaxed),
                m.tuples.load(Ordering::Relaxed),
                m.updates.load(Ordering::Relaxed),
                m.errors.load(Ordering::Relaxed),
                m.quarantined.load(Ordering::Relaxed),
                m.replayed.load(Ordering::Relaxed),
                lat.count,
                lat.mean_us,
                lat.p50_us,
                lat.p99_us,
                lat.p999_us,
                lat.max_us,
            ));
        }
        out.push(']');
        if let Some(b) = bus {
            out.push_str(&format!(
                ",\"events\":{{\"published\":{},\"dropped\":{},\"subscribers\":{},\"depth\":{},\"capacity\":{}}}",
                b.published, b.dropped, b.subscribers, b.depth, b.capacity
            ));
        }
        if let Some(d) = dlq {
            out.push_str(&format!(
                ",\"dlq\":{{\"pending\":{},\"quarantined_total\":{},\"replayed\":{},\"streams_affected\":{}}}",
                d.pending, d.quarantined_total, d.replayed, d.streams_affected
            ));
        }
        out.push('}');
        out
    }

    /// Human-oriented plain-text rendering of the same data.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.inner.shards.iter().enumerate() {
            let s = &s.0;
            out.push_str(&format!(
                "shard {i}: queue {}/{} commands={} ingest_groups={} panics={} checkpoints={}\n",
                s.depth(),
                s.queue_capacity,
                s.commands.load(Ordering::Relaxed),
                s.ingest_groups.load(Ordering::Relaxed),
                s.panics.load(Ordering::Relaxed),
                s.checkpoints.load(Ordering::Relaxed),
            ));
        }
        for id in self.stream_ids() {
            let m = self.stream(id);
            let lat = m.latency.snapshot();
            out.push_str(&format!(
                "stream {id} (shard {}): batches={} tuples={} updates={} errors={} \
                 quarantined={} replayed={} latency p50={:.1}us p99={:.1}us p999={:.1}us max={:.1}us\n",
                m.shard.load(Ordering::Relaxed),
                m.batches.load(Ordering::Relaxed),
                m.tuples.load(Ordering::Relaxed),
                m.updates.load(Ordering::Relaxed),
                m.errors.load(Ordering::Relaxed),
                m.quarantined.load(Ordering::Relaxed),
                m.replayed.load(Ordering::Relaxed),
                lat.p50_us,
                lat.p99_us,
                lat.p999_us,
                lat.max_us,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::default();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 5000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        // log2 buckets are exact to a factor of 2.
        assert!(s.p50_us >= 50.0 / 2.0 && s.p50_us <= 50.0 * 2.0, "p50={}", s.p50_us);
        assert!(s.p99_us >= 5000.0 / 2.0 && s.p99_us <= 5000.0, "p99={}", s.p99_us);
        assert!((s.max_us - 5000.0).abs() < 1.0);
        assert!(s.mean_us > 0.0);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_us, 0.0);
        assert_eq!(s.max_us, 0.0);
    }

    #[test]
    fn registry_creates_streams_lazily_and_dumps_sorted() {
        let reg = MetricsRegistry::new(2, 64);
        reg.stream(9).batches.fetch_add(1, Ordering::Relaxed);
        reg.stream(3).tuples.fetch_add(7, Ordering::Relaxed);
        reg.shard(1).commands.fetch_add(5, Ordering::Relaxed);
        assert_eq!(reg.stream_ids(), vec![3, 9]);
        let json = reg.dump();
        let i3 = json.find("\"stream_id\":3").unwrap();
        let i9 = json.find("\"stream_id\":9").unwrap();
        assert!(i3 < i9);
        assert!(json.contains("\"commands\":5"));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains("\"events\""));
        let text = reg.render_text();
        assert!(text.contains("shard 1"));
        assert!(text.contains("stream 3"));
    }

    #[test]
    fn dump_with_includes_bus_and_dlq_sections() {
        let reg = MetricsRegistry::new(1, 4);
        let bus = BusStats { published: 10, dropped: 2, subscribers: 1, depth: 3, capacity: 8 };
        let dlq = DlqStats { pending: 1, quarantined_total: 2, replayed: 1, streams_affected: 1 };
        let json = reg.dump_with(Some(bus), Some(dlq));
        assert!(json.contains("\"events\":{\"published\":10"));
        assert!(json.contains("\"dlq\":{\"pending\":1"));
    }

    #[test]
    fn shard_blocks_do_not_share_cache_lines() {
        let reg = MetricsRegistry::new(4, 8);
        let a = reg.shard(0) as *const ShardMetrics as usize;
        let b = reg.shard(1) as *const ShardMetrics as usize;
        assert_eq!(a % 128, 0, "shard block not 128-byte aligned");
        assert!(b.abs_diff(a) >= 128, "adjacent shard blocks share a cache-line pair");
    }

    #[test]
    fn shard_depth_clamps_negative() {
        let reg = MetricsRegistry::new(1, 4);
        reg.shard(0).queue_depth.fetch_sub(3, Ordering::Relaxed);
        assert_eq!(reg.shard(0).depth(), 0);
    }
}
