//! Typed lifecycle events published by the pool runtime.

/// Why a stream left its shard (see [`PoolEvent::StreamEvicted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// The client closed the stream (or dropped its session).
    Closed,
    /// The stream was explicitly evicted (e.g. for migration).
    Evicted,
    /// The stream was replaced by a new `open` under the same id.
    Replaced,
}

impl EvictReason {
    /// Short lowercase label for logs and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            EvictReason::Closed => "closed",
            EvictReason::Evicted => "evicted",
            EvictReason::Replaced => "replaced",
        }
    }
}

/// One lifecycle event of the pool runtime.
///
/// Events are facts about what already happened — subscribers can react
/// to causality instead of polling, but can never influence the hot
/// path (the bus is broadcast, lag-tolerant, and fire-and-forget).
///
/// Ordering contract: events about one stream are published by that
/// stream's shard worker (or its session) in causal order; no ordering
/// is guaranteed *across* streams on different shards.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolEvent {
    /// A stream's engine was built and installed on a shard.
    StreamOpened {
        /// The stream that opened.
        stream_id: u64,
        /// Shard the engine lives on.
        shard: usize,
        /// Engine display name (e.g. `"SNS⁺_VEC(rank=16)"`).
        engine: String,
    },
    /// A stream's engine was removed from its shard.
    StreamEvicted {
        /// The stream that left.
        stream_id: u64,
        /// Shard it left.
        shard: usize,
        /// Why it left.
        reason: EvictReason,
    },
    /// A stream's captured state was installed on a new shard.
    StreamMigrated {
        /// The stream that moved.
        stream_id: u64,
        /// Shard it now lives on.
        shard: usize,
    },
    /// A pool-wide checkpoint was committed to the store.
    CheckpointCommitted {
        /// Streams captured in the checkpoint.
        streams: usize,
    },
    /// A journaled pool applied (and journaled) a state-changing
    /// operation. Published only on pools with a configured write-ahead
    /// journal — it is the wake-up signal background checkpoint daemons
    /// subscribe to, and journal-less pools would otherwise flood the
    /// bounded bus with per-batch noise.
    BatchApplied {
        /// The stream the operation was applied to.
        stream_id: u64,
        /// Shard it lives on.
        shard: usize,
        /// WAL sequence units the operation advanced the stream by
        /// (tuples for batches, 1 for clock/warm-start ops).
        units: u64,
        /// The stream's WAL sequence after the operation.
        seq: u64,
    },
    /// A session's blocking submit found its shard queue full and is
    /// about to wait. Emitted on the *edge* (once per full episode).
    BackpressureOnset {
        /// The stream whose submit is stalling.
        stream_id: u64,
        /// Shard whose queue is full.
        shard: usize,
        /// Commands in flight when the stall began.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The stalled submit from the last
    /// [`PoolEvent::BackpressureOnset`] got through.
    BackpressureRelief {
        /// The stream that resumed.
        stream_id: u64,
        /// Shard that drained.
        shard: usize,
    },
    /// An anomaly-decorated engine flagged at least one new tuple
    /// during a batch.
    AnomalyFlagged {
        /// The stream that flagged.
        stream_id: u64,
        /// Shard it lives on.
        shard: usize,
        /// Total flagged tuples on this stream so far.
        flagged: u64,
    },
    /// A batch panicked its engine; the engine was rolled back to its
    /// pre-batch state and the batch was quarantined for later replay.
    TupleQuarantined {
        /// The stream whose batch was quarantined.
        stream_id: u64,
        /// Shard it lives on.
        shard: usize,
        /// Session ticket of the quarantined batch.
        ticket: u64,
        /// Tuples in the quarantined batch.
        tuples: usize,
    },
}

impl PoolEvent {
    /// The stream this event concerns, if it is stream-scoped.
    pub fn stream_id(&self) -> Option<u64> {
        match self {
            PoolEvent::StreamOpened { stream_id, .. }
            | PoolEvent::StreamEvicted { stream_id, .. }
            | PoolEvent::StreamMigrated { stream_id, .. }
            | PoolEvent::BackpressureOnset { stream_id, .. }
            | PoolEvent::BackpressureRelief { stream_id, .. }
            | PoolEvent::AnomalyFlagged { stream_id, .. }
            | PoolEvent::TupleQuarantined { stream_id, .. }
            | PoolEvent::BatchApplied { stream_id, .. } => Some(*stream_id),
            PoolEvent::CheckpointCommitted { .. } => None,
        }
    }

    /// Stable lowercase kind label (the event taxonomy in README).
    pub fn kind(&self) -> &'static str {
        match self {
            PoolEvent::StreamOpened { .. } => "stream_opened",
            PoolEvent::StreamEvicted { .. } => "stream_evicted",
            PoolEvent::StreamMigrated { .. } => "stream_migrated",
            PoolEvent::CheckpointCommitted { .. } => "checkpoint_committed",
            PoolEvent::BackpressureOnset { .. } => "backpressure_onset",
            PoolEvent::BackpressureRelief { .. } => "backpressure_relief",
            PoolEvent::AnomalyFlagged { .. } => "anomaly_flagged",
            PoolEvent::TupleQuarantined { .. } => "tuple_quarantined",
            PoolEvent::BatchApplied { .. } => "batch_applied",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_id_and_kind_cover_every_variant() {
        let events = [
            PoolEvent::StreamOpened { stream_id: 1, shard: 0, engine: "e".into() },
            PoolEvent::StreamEvicted { stream_id: 2, shard: 0, reason: EvictReason::Closed },
            PoolEvent::StreamMigrated { stream_id: 3, shard: 1 },
            PoolEvent::CheckpointCommitted { streams: 4 },
            PoolEvent::BackpressureOnset { stream_id: 5, shard: 0, depth: 4, capacity: 4 },
            PoolEvent::BackpressureRelief { stream_id: 5, shard: 0 },
            PoolEvent::AnomalyFlagged { stream_id: 6, shard: 0, flagged: 2 },
            PoolEvent::TupleQuarantined { stream_id: 7, shard: 0, ticket: 9, tuples: 3 },
            PoolEvent::BatchApplied { stream_id: 8, shard: 0, units: 16, seq: 48 },
        ];
        for e in &events {
            assert!(!e.kind().is_empty());
            match e {
                PoolEvent::CheckpointCommitted { .. } => assert_eq!(e.stream_id(), None),
                _ => assert!(e.stream_id().is_some()),
            }
        }
        // kinds are distinct
        let mut kinds: Vec<_> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }

    #[test]
    fn evict_reason_labels() {
        assert_eq!(EvictReason::Closed.label(), "closed");
        assert_eq!(EvictReason::Evicted.label(), "evicted");
        assert_eq!(EvictReason::Replaced.label(), "replaced");
    }
}
