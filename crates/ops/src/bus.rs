//! Bounded in-process broadcast bus with lag-tolerant subscribers.
//!
//! Design constraints, in priority order:
//!
//! 1. **Publishers never block.** The pool's shard workers publish from
//!    the ingest hot path; a stalled subscriber must not be able to
//!    slow them down. The ring is bounded and *drop-oldest*: when it is
//!    full the oldest event is evicted and lagging subscribers observe
//!    a [`BusItem::Lagged`] gap marker instead of holding memory.
//! 2. **Zero cost when nobody listens.** `publish` first checks an
//!    atomic subscriber count and returns without locking when it is
//!    zero — an unsubscribed pool pays exactly one relaxed *load* per
//!    event site, no read-modify-write, so the cache line stays shared
//!    across shard workers (and event construction is skipped by
//!    callers via [`EventBus::has_subscribers`]).
//! 3. **Causal per-publisher order.** Events published by one thread
//!    are observed by every subscriber in publication order; no order
//!    is guaranteed across publishers.
//!
//! The implementation is a `Mutex<VecDeque>` ring plus a `Condvar` for
//! blocking receives — deliberately boring, std-only, and obviously
//! correct rather than lock-free.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::clock;

/// One receive result from a [`Subscription`].
#[derive(Debug, Clone, PartialEq)]
pub enum BusItem<E> {
    /// The next event in publication order.
    Event(Arc<E>),
    /// The subscriber fell behind and `missed` events were evicted
    /// before it read them; the cursor has jumped to the oldest
    /// retained event.
    Lagged {
        /// Events lost to ring eviction since the last receive.
        missed: u64,
    },
}

/// Aggregate counters of a bus, for the metrics dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusStats {
    /// Events that entered the ring (publishes with no live subscriber
    /// are dropped before any counter traffic and are not counted).
    pub published: u64,
    /// Events evicted from the ring before every subscriber saw them.
    pub dropped: u64,
    /// Live subscriptions right now.
    pub subscribers: usize,
    /// Events currently retained in the ring.
    pub depth: usize,
    /// Configured ring capacity.
    pub capacity: usize,
}

struct Ring<E> {
    /// Sequence number the *next* published event will get.
    next_seq: u64,
    /// Retained events; front has sequence `next_seq - buf.len()`.
    buf: VecDeque<Arc<E>>,
}

struct BusInner<E> {
    capacity: usize,
    subscribers: AtomicUsize,
    published: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<Ring<E>>,
    readable: Condvar,
}

/// Bounded broadcast channel: every subscriber sees every event
/// published after it subscribed, except those it lost by lagging.
///
/// Cloning the bus is cheap (an `Arc` bump); all clones share one ring.
pub struct EventBus<E> {
    inner: Arc<BusInner<E>>,
}

impl<E> Clone for EventBus<E> {
    fn clone(&self) -> Self {
        EventBus { inner: Arc::clone(&self.inner) }
    }
}

impl<E> EventBus<E> {
    /// Creates a bus retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventBus {
            inner: Arc::new(BusInner {
                capacity,
                subscribers: AtomicUsize::new(0),
                published: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                ring: Mutex::new(Ring { next_seq: 0, buf: VecDeque::with_capacity(capacity) }),
                readable: Condvar::new(),
            }),
        }
    }

    /// True if at least one subscription is live. Callers on the hot
    /// path use this to skip event *construction* entirely.
    ///
    /// The load is `Relaxed`: this is a heuristic gate, not a
    /// synchronization point. Real publish/receive ordering comes from
    /// the ring mutex; the documented subscribe race (a subscription
    /// only sees events published after it is established) already
    /// permits a stale read here.
    #[inline]
    pub fn has_subscribers(&self) -> bool {
        self.inner.subscribers.load(Ordering::Relaxed) != 0
    }

    /// Publishes an event. Never blocks. Returns `true` if the event
    /// entered the ring (i.e. somebody was subscribed to receive it).
    ///
    /// With zero subscribers this is a single relaxed load — the event
    /// is dropped without taking the lock and without touching any
    /// counter, so concurrent publishers never contend on a shared
    /// cache line. A subscriber that races `subscribe` against this
    /// check may miss the event; a subscription only guarantees events
    /// published after it is established.
    pub fn publish(&self, event: E) -> bool {
        if !self.has_subscribers() {
            return false;
        }
        self.inner.published.fetch_add(1, Ordering::Relaxed);
        {
            let mut ring = self.inner.ring.lock().expect("event-bus ring poisoned");
            if ring.buf.len() == self.inner.capacity {
                ring.buf.pop_front();
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.buf.push_back(Arc::new(event));
            ring.next_seq += 1;
        }
        self.inner.readable.notify_all();
        true
    }

    /// Opens a subscription positioned at "now": it will observe every
    /// event published after this call (minus any it loses by lagging).
    pub fn subscribe(&self) -> Subscription<E> {
        // Count up *before* reading the cursor so a concurrent publish
        // either sees the subscriber (event retained) or happened
        // before the cursor (event legitimately missed).
        self.inner.subscribers.fetch_add(1, Ordering::AcqRel);
        let cursor = self.inner.ring.lock().expect("event-bus ring poisoned").next_seq;
        Subscription { inner: Arc::clone(&self.inner), cursor }
    }

    /// Aggregate counters for the metrics dump.
    pub fn stats(&self) -> BusStats {
        let depth = self.inner.ring.lock().expect("event-bus ring poisoned").buf.len();
        BusStats {
            published: self.inner.published.load(Ordering::Relaxed),
            dropped: self.inner.dropped.load(Ordering::Relaxed),
            subscribers: self.inner.subscribers.load(Ordering::Acquire),
            depth,
            capacity: self.inner.capacity,
        }
    }
}

/// A receiver endpoint of an [`EventBus`]. Dropping it unsubscribes —
/// which is why discarding one unread is almost always a bug.
#[must_use = "dropping a Subscription unsubscribes it; bind it and read events"]
pub struct Subscription<E> {
    inner: Arc<BusInner<E>>,
    /// Sequence number of the next event this subscriber wants.
    cursor: u64,
}

impl<E> Subscription<E> {
    /// Non-blocking receive. `None` means no new event is available.
    pub fn try_next(&mut self) -> Option<BusItem<E>> {
        let ring = self.inner.ring.lock().expect("event-bus ring poisoned");
        take_from(&mut self.cursor, &ring)
    }

    /// Blocking receive with a deadline. `None` on timeout.
    pub fn next_timeout(&mut self, timeout: Duration) -> Option<BusItem<E>> {
        let deadline = clock::now() + timeout;
        let mut ring = self.inner.ring.lock().expect("event-bus ring poisoned");
        loop {
            if let Some(item) = take_from(&mut self.cursor, &ring) {
                return Some(item);
            }
            let now = clock::now();
            if now >= deadline {
                return None;
            }
            let (guard, res) = self
                .inner
                .readable
                .wait_timeout(ring, deadline - now)
                .expect("event-bus ring poisoned");
            ring = guard;
            if res.timed_out() {
                return take_from(&mut self.cursor, &ring);
            }
        }
    }

    /// Drains everything currently available (gap markers included).
    pub fn drain(&mut self) -> Vec<BusItem<E>> {
        let ring = self.inner.ring.lock().expect("event-bus ring poisoned");
        let mut out = Vec::new();
        while let Some(item) = take_from(&mut self.cursor, &ring) {
            out.push(item);
        }
        out
    }
}

fn take_from<E>(cursor: &mut u64, ring: &Ring<E>) -> Option<BusItem<E>> {
    let oldest = ring.next_seq - ring.buf.len() as u64;
    if *cursor < oldest {
        let missed = oldest - *cursor;
        *cursor = oldest;
        return Some(BusItem::Lagged { missed });
    }
    if *cursor == ring.next_seq {
        return None;
    }
    let idx = (*cursor - oldest) as usize;
    let event = Arc::clone(&ring.buf[idx]);
    *cursor += 1;
    Some(BusItem::Event(event))
}

impl<E> Drop for Subscription<E> {
    fn drop(&mut self) {
        self.inner.subscribers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsubscribed_publish_is_dropped() {
        let bus: EventBus<u32> = EventBus::new(8);
        assert!(!bus.publish(1));
        let stats = bus.stats();
        // The dropped publish leaves no counter trace: the unsubscribed
        // fast path is a single relaxed load, no read-modify-write.
        assert_eq!(stats.published, 0);
        assert_eq!(stats.depth, 0);
        assert_eq!(stats.subscribers, 0);
    }

    #[test]
    fn subscriber_sees_events_in_order() {
        let bus: EventBus<u32> = EventBus::new(8);
        let mut sub = bus.subscribe();
        for i in 0..5u32 {
            assert!(bus.publish(i));
        }
        for i in 0..5u32 {
            match sub.try_next() {
                Some(BusItem::Event(e)) => assert_eq!(*e, i),
                other => panic!("expected event {i}, got {other:?}"),
            }
        }
        assert_eq!(sub.try_next(), None);
    }

    #[test]
    fn lagging_subscriber_observes_gap_then_tail() {
        let bus: EventBus<u32> = EventBus::new(4);
        let mut sub = bus.subscribe();
        for i in 0..10u32 {
            bus.publish(i);
        }
        // Ring holds 6..10; the first read reports the 6-event gap.
        match sub.try_next() {
            Some(BusItem::Lagged { missed }) => assert_eq!(missed, 6),
            other => panic!("expected lag marker, got {other:?}"),
        }
        for i in 6..10u32 {
            match sub.try_next() {
                Some(BusItem::Event(e)) => assert_eq!(*e, i),
                other => panic!("expected event {i}, got {other:?}"),
            }
        }
        assert_eq!(bus.stats().dropped, 6);
    }

    #[test]
    fn subscription_starts_at_now() {
        let bus: EventBus<u32> = EventBus::new(8);
        let mut early = bus.subscribe();
        bus.publish(1);
        let mut late = bus.subscribe();
        bus.publish(2);
        assert_eq!(early.drain().len(), 2);
        let items = late.drain();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0], BusItem::Event(Arc::new(2)));
    }

    #[test]
    fn drop_unsubscribes() {
        let bus: EventBus<u32> = EventBus::new(8);
        let sub = bus.subscribe();
        assert!(bus.has_subscribers());
        drop(sub);
        assert!(!bus.has_subscribers());
        assert!(!bus.publish(3));
    }

    #[test]
    fn blocking_receive_wakes_on_publish() {
        let bus: EventBus<u32> = EventBus::new(8);
        let mut sub = bus.subscribe();
        let publisher = {
            let bus = bus.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                bus.publish(42);
            })
        };
        let got = sub.next_timeout(Duration::from_secs(5));
        publisher.join().unwrap();
        assert_eq!(got, Some(BusItem::Event(Arc::new(42))));
        assert_eq!(sub.next_timeout(Duration::from_millis(5)), None);
    }
}
