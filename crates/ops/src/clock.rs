//! The workspace's single wall-clock seam.
//!
//! Engine and runtime code must not call `Instant::now()` directly —
//! `sns-lint`'s `determinism/wall-clock` rule enforces it. Routing every
//! clock read through this module gives the workspace one auditable
//! place where time enters the system: latency metrics, lag-based
//! backpressure events, chaos-injection delay loops. The deterministic
//! core (engines, codec, WAL replay) takes no time readings at all, so
//! the seam is only ever reached from operability code.
//!
//! The functions are thin today; the seam's value is the choke point.
//! A virtual clock for replay tests can be added here without touching
//! any call site.

use std::time::{Duration, Instant};

/// Reads the monotonic clock. The only sanctioned `Instant::now()` in
/// library code (see `lint.toml`).
#[inline]
#[must_use]
pub fn now() -> Instant {
    Instant::now()
}

/// Monotonic time elapsed since `start`, measured through the seam.
#[inline]
#[must_use]
pub fn elapsed(start: Instant) -> Duration {
    now().saturating_duration_since(start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_through_the_seam() {
        let a = now();
        let b = now();
        assert!(b >= a);
        assert!(elapsed(a) >= Duration::ZERO);
    }
}
