//! Dead-letter quarantine for batches that panicked or poisoned an
//! engine.
//!
//! The contract with the runtime:
//!
//! - When a batch panics an engine, the worker rolls the engine back to
//!   its pre-batch state and records the batch here as a
//!   [`DeadLetter`] — full context: the tuples, the engine spec, the
//!   operation, and the error text. The stream keeps serving.
//! - While a stream has pending letters, *subsequent* batches for it
//!   are also diverted here (in arrival order) rather than applied —
//!   applying them would reorder the stream's chronology and make a
//!   later replay non-deterministic.
//! - Replay ([`DeadLetterQueue::take`]) hands the letters back FIFO;
//!   after the caller repairs and re-ingests them the stream's state is
//!   byte-identical to a run that never saw the fault (given the same
//!   repaired tuples), because engines are deterministic functions of
//!   their input order.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sns_error::SnsError;
use sns_stream::StreamTuple;

/// Which engine operation the quarantined batch was performing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantinedOp {
    /// `prefill_all` — tuples land in the window without factor updates.
    Prefill,
    /// `ingest_all` — the normal per-event update path.
    Ingest,
}

impl QuarantinedOp {
    /// Short lowercase label for logs and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            QuarantinedOp::Prefill => "prefill",
            QuarantinedOp::Ingest => "ingest",
        }
    }
}

/// One quarantined batch with everything needed to repair + replay it.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter<S> {
    /// Monotonic quarantine id (global across streams).
    pub id: u64,
    /// The stream whose batch was quarantined.
    pub stream_id: u64,
    /// Shard hosting the stream when the fault occurred.
    pub shard: usize,
    /// Session ticket of the batch.
    pub ticket: u64,
    /// Operation being performed.
    pub op: QuarantinedOp,
    /// The offending (or diverted) tuples, in submission order.
    pub tuples: Vec<StreamTuple>,
    /// Why the batch was quarantined — the caught panic for the
    /// faulting batch, [`SnsError::StreamQuarantined`] for batches
    /// diverted behind it.
    pub error: SnsError,
    /// The engine spec active at quarantine time (for repair tooling).
    pub spec: S,
}

/// Aggregate DLQ counters for the metrics dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlqStats {
    /// Letters currently awaiting replay.
    pub pending: usize,
    /// Letters ever quarantined.
    pub quarantined_total: u64,
    /// Letters taken for replay ([`DeadLetterQueue::take`]).
    pub replayed: u64,
    /// Distinct streams that ever quarantined a batch.
    pub streams_affected: usize,
}

struct DlqState<S> {
    letters: HashMap<u64, VecDeque<DeadLetter<S>>>,
    affected: HashSet<u64>,
    pending: usize,
}

/// Per-stream FIFO queues of [`DeadLetter`]s. Cloning is cheap; clones
/// share state.
pub struct DeadLetterQueue<S> {
    inner: Arc<DlqInner<S>>,
}

struct DlqInner<S> {
    next_id: AtomicU64,
    quarantined_total: AtomicU64,
    replayed: AtomicU64,
    state: Mutex<DlqState<S>>,
}

impl<S> Clone for DeadLetterQueue<S> {
    fn clone(&self) -> Self {
        DeadLetterQueue { inner: Arc::clone(&self.inner) }
    }
}

impl<S> Default for DeadLetterQueue<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> DeadLetterQueue<S> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        DeadLetterQueue {
            inner: Arc::new(DlqInner {
                next_id: AtomicU64::new(0),
                quarantined_total: AtomicU64::new(0),
                replayed: AtomicU64::new(0),
                state: Mutex::new(DlqState {
                    letters: HashMap::new(),
                    affected: HashSet::new(),
                    pending: 0,
                }),
            }),
        }
    }

    /// Records a quarantined batch; returns its quarantine id.
    #[allow(clippy::too_many_arguments)]
    pub fn quarantine(
        &self,
        stream_id: u64,
        shard: usize,
        ticket: u64,
        op: QuarantinedOp,
        tuples: Vec<StreamTuple>,
        error: SnsError,
        spec: S,
    ) -> u64 {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.quarantined_total.fetch_add(1, Ordering::Relaxed);
        let mut state = self.inner.state.lock().expect("dead-letter state poisoned");
        state.affected.insert(stream_id);
        state.pending += 1;
        state.letters.entry(stream_id).or_default().push_back(DeadLetter {
            id,
            stream_id,
            shard,
            ticket,
            op,
            tuples,
            error,
            spec,
        });
        id
    }

    /// Letters pending for one stream.
    pub fn pending(&self, stream_id: u64) -> usize {
        self.inner
            .state
            .lock()
            .expect("dead-letter state poisoned")
            .letters
            .get(&stream_id)
            .map_or(0, VecDeque::len)
    }

    /// Letters pending across all streams.
    pub fn pending_total(&self) -> usize {
        self.inner.state.lock().expect("dead-letter state poisoned").pending
    }

    /// Streams with at least one pending letter, ascending.
    pub fn streams(&self) -> Vec<u64> {
        let state = self.inner.state.lock().expect("dead-letter state poisoned");
        let mut ids: Vec<u64> =
            state.letters.iter().filter(|(_, q)| !q.is_empty()).map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids
    }

    /// Removes and returns a stream's letters, FIFO. The caller owns
    /// them now — repair and re-ingest, or [`Self::requeue_front`] on
    /// a failed replay.
    pub fn take(&self, stream_id: u64) -> Vec<DeadLetter<S>> {
        let mut state = self.inner.state.lock().expect("dead-letter state poisoned");
        let letters: Vec<_> = state.letters.remove(&stream_id).map(Vec::from).unwrap_or_default();
        state.pending -= letters.len();
        self.inner.replayed.fetch_add(letters.len() as u64, Ordering::Relaxed);
        letters
    }

    /// Puts letters back at the *front* of a stream's queue (a replay
    /// that failed partway must not reorder the remainder).
    pub fn requeue_front(&self, stream_id: u64, letters: Vec<DeadLetter<S>>) {
        if letters.is_empty() {
            return;
        }
        let mut state = self.inner.state.lock().expect("dead-letter state poisoned");
        state.pending += letters.len();
        self.inner.replayed.fetch_sub(letters.len() as u64, Ordering::Relaxed);
        let queue = state.letters.entry(stream_id).or_default();
        for letter in letters.into_iter().rev() {
            queue.push_front(letter);
        }
    }

    /// Aggregate counters for the metrics dump.
    pub fn stats(&self) -> DlqStats {
        let state = self.inner.state.lock().expect("dead-letter state poisoned");
        DlqStats {
            pending: state.pending,
            quarantined_total: self.inner.quarantined_total.load(Ordering::Relaxed),
            replayed: self.inner.replayed.load(Ordering::Relaxed),
            streams_affected: state.affected.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letter_tuples(n: usize) -> Vec<StreamTuple> {
        (0..n).map(|i| StreamTuple::new([i as u32], 1.0, i as u64)).collect()
    }

    fn boom(stream_id: u64) -> SnsError {
        SnsError::EnginePanicked { stream_id, message: "boom".into() }
    }

    #[test]
    fn quarantine_take_roundtrip_is_fifo() {
        let dlq: DeadLetterQueue<&'static str> = DeadLetterQueue::new();
        dlq.quarantine(7, 0, 10, QuarantinedOp::Ingest, letter_tuples(2), boom(7), "spec");
        dlq.quarantine(7, 0, 11, QuarantinedOp::Ingest, letter_tuples(1), boom(7), "spec");
        dlq.quarantine(9, 1, 3, QuarantinedOp::Prefill, letter_tuples(3), boom(9), "spec");
        assert_eq!(dlq.pending(7), 2);
        assert_eq!(dlq.pending_total(), 3);
        assert_eq!(dlq.streams(), vec![7, 9]);

        let taken = dlq.take(7);
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].ticket, 10);
        assert_eq!(taken[1].ticket, 11);
        assert_eq!(taken[0].op.label(), "ingest");
        assert_eq!(dlq.pending(7), 0);
        assert_eq!(dlq.pending_total(), 1);

        let stats = dlq.stats();
        assert_eq!(stats.quarantined_total, 3);
        assert_eq!(stats.replayed, 2);
        assert_eq!(stats.streams_affected, 2);
    }

    #[test]
    fn requeue_front_preserves_order() {
        let dlq: DeadLetterQueue<&'static str> = DeadLetterQueue::new();
        for ticket in 0..4u64 {
            dlq.quarantine(1, 0, ticket, QuarantinedOp::Ingest, letter_tuples(1), boom(1), "s");
        }
        let mut taken = dlq.take(1);
        // Replay of tickets 0..2 succeeded; 2..4 go back untouched.
        let rest = taken.split_off(2);
        dlq.requeue_front(1, rest);
        dlq.quarantine(1, 0, 4, QuarantinedOp::Ingest, letter_tuples(1), boom(1), "s");
        let tickets: Vec<u64> = dlq.take(1).iter().map(|l| l.ticket).collect();
        assert_eq!(tickets, vec![2, 3, 4]);
        assert_eq!(dlq.stats().replayed, 5);
    }

    #[test]
    fn empty_stream_take_is_empty() {
        let dlq: DeadLetterQueue<u8> = DeadLetterQueue::new();
        assert!(dlq.take(42).is_empty());
        assert_eq!(dlq.pending(42), 0);
        assert_eq!(
            dlq.stats(),
            DlqStats { pending: 0, quarantined_total: 0, replayed: 0, streams_affected: 0 }
        );
    }
}
