//! Window change records (`ΔX` of Definition 6).
//!
//! Every event of the continuous tensor model changes at most two entries
//! of the tensor window. A [`Delta`] carries those changes together with
//! the originating tuple and the boundary count `w`, which is exactly the
//! information Algorithm 3 of the paper consumes.

use crate::tuple::StreamTuple;
use sns_tensor::Coord;

/// The kind of window event that produced a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// S.1 — the tuple just arrived (`w = 0`): `+v` at time index `W−1`.
    Arrival,
    /// S.2 — the tuple crossed its `w`-th unit boundary (`1 ≤ w < W`):
    /// `−v` at time index `W−w`, `+v` at `W−w−1` (0-based).
    Shift,
    /// S.3 — the tuple left the window (`w = W`): `−v` at time index `0`.
    Expiry,
}

/// Up to two `(coordinate, signed value)` changes, stored inline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Changes {
    len: u8,
    items: [(Coord, f64); 2],
}

impl Changes {
    /// One-entry change set.
    pub fn one(c: Coord, v: f64) -> Self {
        Changes { len: 1, items: [(c, v), (c, 0.0)] }
    }

    /// Two-entry change set.
    pub fn two(c1: Coord, v1: f64, c2: Coord, v2: f64) -> Self {
        Changes { len: 2, items: [(c1, v1), (c2, v2)] }
    }

    /// Number of changed entries (1 or 2).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Never empty by construction, but provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The changes as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[(Coord, f64)] {
        &self.items[..self.len as usize]
    }

    /// Iterates over `(coord, signed value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(Coord, f64)> + '_ {
        self.as_slice().iter()
    }

    /// The changed coordinates only (used for sampling exclusion).
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        self.as_slice().iter().map(|&(c, _)| c)
    }
}

/// One atomic change of the tensor window.
///
/// The window applies the change *before* handing the delta to the CPD
/// algorithm, so during an update `window == X + ΔX` in the paper's
/// notation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delta {
    /// Wall-clock time at which the event fired.
    pub time: u64,
    /// Event class (arrival / boundary shift / expiry).
    pub kind: DeltaKind,
    /// Boundary count `w ∈ {0,…,W}`; `0` for arrivals, `W` for expiry.
    pub w: u32,
    /// The originating stream tuple.
    pub tuple: StreamTuple,
    /// The at-most-two changed entries (full window coordinates, i.e.
    /// including the time mode as the last mode).
    pub changes: Changes,
}

impl Delta {
    /// The non-time categorical coordinates `i₁,…,i_{M−1}`.
    #[inline]
    pub fn categorical(&self) -> &Coord {
        &self.tuple.coords
    }

    /// The affected time-mode indices (0-based), newest-side first.
    pub fn time_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.changes.iter().map(|(c, _)| c.get(c.order() - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup() -> StreamTuple {
        StreamTuple::new([1u32, 2], 3.0, 10)
    }

    #[test]
    fn one_and_two_changes() {
        let c1 = Coord::new(&[1, 2, 9]);
        let c2 = Coord::new(&[1, 2, 8]);
        let one = Changes::one(c1, 3.0);
        assert_eq!(one.len(), 1);
        assert!(!one.is_empty());
        assert_eq!(one.as_slice(), &[(c1, 3.0)]);
        let two = Changes::two(c1, -3.0, c2, 3.0);
        assert_eq!(two.len(), 2);
        let got: Vec<_> = two.iter().copied().collect();
        assert_eq!(got, vec![(c1, -3.0), (c2, 3.0)]);
        let coords: Vec<_> = two.coords().collect();
        assert_eq!(coords, vec![c1, c2]);
    }

    #[test]
    fn delta_accessors() {
        let c1 = Coord::new(&[1, 2, 9]);
        let d = Delta {
            time: 10,
            kind: DeltaKind::Arrival,
            w: 0,
            tuple: tup(),
            changes: Changes::one(c1, 3.0),
        };
        assert_eq!(d.categorical().as_slice(), &[1, 2]);
        assert_eq!(d.time_indices().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn delta_is_copy() {
        let c1 = Coord::new(&[0, 0, 0]);
        let d = Delta {
            time: 0,
            kind: DeltaKind::Expiry,
            w: 3,
            tuple: tup(),
            changes: Changes::one(c1, -1.0),
        };
        let e = d; // Copy
        assert_eq!(d, e);
    }
}
