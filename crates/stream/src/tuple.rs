//! Stream tuples (Definition 1 of the paper).

use sns_tensor::Coord;

/// One timestamped element of a multi-aspect data stream:
/// `(e = (i₁,…,i_{M−1}, v), t)`.
///
/// `coords` holds the `M−1` categorical indices (the time mode is *not*
/// part of the tuple — it is derived from `time` by the window model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamTuple {
    /// Categorical indices `i₁,…,i_{M−1}`.
    pub coords: Coord,
    /// Numerical value `v` (e.g. a trip count or purchase quantity).
    pub value: f64,
    /// Timestamp `t` in stream ticks (e.g. seconds).
    pub time: u64,
}

impl StreamTuple {
    /// Creates a tuple.
    pub fn new(coords: impl Into<Coord>, value: f64, time: u64) -> Self {
        StreamTuple { coords: coords.into(), value, time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let t = StreamTuple::new([1u32, 2], 3.0, 99);
        assert_eq!(t.coords.as_slice(), &[1, 2]);
        assert_eq!(t.value, 3.0);
        assert_eq!(t.time, 99);
    }

    #[test]
    fn tuple_is_copy_and_small() {
        // Processed millions of times; keep it register-friendly.
        assert!(std::mem::size_of::<StreamTuple>() <= 48);
        let t = StreamTuple::new([0u32], 1.0, 0);
        let u = t; // Copy
        assert_eq!(t, u);
    }
}
