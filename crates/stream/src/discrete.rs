//! Conventional (discrete) sliding-window tensor model — Section III.
//!
//! Units end at fixed wall-clock multiples of `T`: unit `w` aggregates
//! `(w·T − T, w·T]`. The window tensor holds the `W` most recently
//! *completed* units — it changes **only once per period**, which is
//! precisely the limitation of the conventional model that the paper's
//! continuous model removes. Tuples of the in-flight period accumulate in
//! a side buffer until their period completes. Baseline algorithms are
//! notified once per period via [`PeriodUpdate`].
//!
//! A slide re-keys all non-zeros (O(nnz)) — once per period, consistent
//! with the baselines' per-period cost model.

use crate::tuple::StreamTuple;
use crate::Result;
use sns_error::SnsError;
use sns_tensor::{Coord, IndexedCoordSet, Shape, SparseTensor, SparseTensorState};

/// Notification that a period just completed and the window slid by one.
#[derive(Debug, Clone)]
pub struct PeriodUpdate {
    /// End time of the completed period (a multiple of `T`).
    pub boundary: u64,
    /// The completed unit as aggregated `(categorical coord, value)` pairs.
    pub slice: Vec<(Coord, f64)>,
    /// The unit that just left the window (time index 0 before the slide),
    /// needed by windowed baselines to downdate their accumulators.
    pub evicted: Vec<(Coord, f64)>,
}

/// Discrete sliding tensor window (conventional model).
///
/// The pending (in-flight) unit accumulates in an insertion-ordered
/// [`IndexedCoordSet`], so the order a completed period's slice is handed
/// to the baselines — and with it their float summation order — is a
/// deterministic function of the arrival history that survives state
/// capture bitwise.
#[derive(Clone)]
pub struct DiscreteWindow {
    tensor: SparseTensor,
    period: u64,
    window: usize,
    /// Exclusive upper bound of the unit currently accumulating:
    /// the active unit covers `(boundary − T, boundary]`.
    boundary: u64,
    pending: IndexedCoordSet,
    last_arrival: Option<u64>,
    periods_completed: u64,
}

impl DiscreteWindow {
    /// Creates a discrete window over categorical dims `base_dims` with
    /// `window` units of `period` ticks. The first unit covers `(0, T]`.
    pub fn new(base_dims: &[usize], window: usize, period: u64) -> Self {
        assert!(window > 0, "window size W must be positive");
        assert!(period > 0, "period T must be positive");
        let mut dims = base_dims.to_vec();
        dims.push(window);
        DiscreteWindow {
            tensor: SparseTensor::new(Shape::new(&dims)),
            period,
            window,
            boundary: period,
            pending: IndexedCoordSet::new(),
            last_arrival: None,
            periods_completed: 0,
        }
    }

    /// The current window tensor (completed units + the accumulating one).
    pub fn tensor(&self) -> &SparseTensor {
        &self.tensor
    }

    /// Period `T`.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Window length `W`.
    pub fn window_size(&self) -> usize {
        self.window
    }

    /// Number of completed periods so far.
    pub fn periods_completed(&self) -> u64 {
        self.periods_completed
    }

    /// Index of the time mode.
    pub fn time_mode(&self) -> usize {
        self.tensor.shape().order() - 1
    }

    fn complete_period(&mut self) -> PeriodUpdate {
        // Gather the unit leaving the window (time index 0).
        let evicted: Vec<(Coord, f64)> = self
            .tensor
            .fiber_entries(self.time_mode(), 0)
            .map(|(c, v)| (c.truncated(), v))
            .collect();
        // Slide: re-key every entry one time index down.
        let shape = self.tensor.shape().clone();
        let tm = self.time_mode();
        let mut slid = SparseTensor::new(shape);
        for (c, v) in self.tensor.iter() {
            let t = c.get(tm);
            if t == 0 {
                continue; // evicted
            }
            slid.add(&c.with(tm, t - 1), v);
        }
        // Install the completed unit at the newest index, in arrival
        // order (deterministic; baselines sum slice entries in this
        // order).
        let newest = (self.window - 1) as u32;
        let slice: Vec<(Coord, f64)> = self.pending.take_entries();
        for (c, v) in &slice {
            slid.add(&c.extended(newest), *v);
        }
        self.tensor = slid;
        let update = PeriodUpdate { boundary: self.boundary, slice, evicted };
        self.boundary += self.period;
        self.periods_completed += 1;
        update
    }

    /// Advances the wall clock to `t`, completing every period whose end
    /// lies strictly before or at `t`… more precisely, a unit `(b−T, b]`
    /// completes as soon as the clock passes `b` (i.e. `t > b`). Completed
    /// periods are appended to `out`.
    pub fn advance_to(&mut self, t: u64, out: &mut Vec<PeriodUpdate>) {
        while t > self.boundary {
            out.push(self.complete_period());
        }
    }

    /// Ingests a tuple, first completing any periods that ended before it.
    ///
    /// # Errors
    /// Rejects out-of-order tuples and out-of-shape coordinates.
    pub fn ingest(&mut self, tuple: StreamTuple, out: &mut Vec<PeriodUpdate>) -> Result<()> {
        let base_order = self.time_mode();
        if tuple.coords.order() != base_order {
            return Err(SnsError::OrderMismatch {
                expected: base_order,
                got: tuple.coords.order(),
            });
        }
        for m in 0..base_order {
            let len = self.tensor.shape().dim(m);
            if tuple.coords.get(m) as usize >= len {
                return Err(SnsError::OutOfBounds { mode: m, index: tuple.coords.get(m), len });
            }
        }
        if let Some(prev) = self.last_arrival {
            if tuple.time < prev {
                return Err(SnsError::OutOfOrder { previous: prev, got: tuple.time });
            }
        }
        self.advance_to(tuple.time, out);
        self.last_arrival = Some(tuple.time);
        // Accumulate into the pending unit only; the window tensor does not
        // change until the period completes (conventional-model semantics).
        self.pending.add_value(tuple.coords, tuple.value);
        Ok(())
    }

    /// Flushes every period ending at or before `t` (use at end of stream).
    pub fn flush_to(&mut self, t: u64, out: &mut Vec<PeriodUpdate>) {
        while t >= self.boundary {
            out.push(self.complete_period());
        }
    }

    /// Accumulated value of the in-flight (pending) unit at a categorical
    /// coordinate — the unit arrivals land in, invisible in
    /// [`DiscreteWindow::tensor`] until its period completes. Read-only;
    /// anomaly scoring uses this to compare an arrival against what its
    /// period has accumulated so far.
    pub fn pending_value(&self, coords: &Coord) -> f64 {
        self.pending.get(coords).unwrap_or(0.0)
    }

    /// Captures the complete window state — tensor (with iteration
    /// orders), pending accumulation (in arrival order), and period
    /// bookkeeping — for durable serialization.
    pub fn capture_state(&self) -> DiscreteWindowState {
        DiscreteWindowState {
            tensor: self.tensor.capture_state(),
            period: self.period,
            window: self.window,
            boundary: self.boundary,
            pending: self.pending.entries().map(|(c, v)| (*c, v)).collect(),
            last_arrival: self.last_arrival,
            periods_completed: self.periods_completed,
        }
    }

    /// Rebuilds a window from captured state.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency.
    pub fn from_state(state: DiscreteWindowState) -> std::result::Result<Self, String> {
        let DiscreteWindowState {
            tensor,
            period,
            window,
            boundary,
            pending,
            last_arrival,
            periods_completed,
        } = state;
        if window == 0 || period == 0 {
            return Err(format!("degenerate window geometry W={window} T={period}"));
        }
        let tensor = SparseTensor::from_state(tensor)?;
        if tensor.shape().dim(tensor.order() - 1) != window {
            return Err(format!(
                "time mode length {} does not match W={window}",
                tensor.shape().dim(tensor.order() - 1)
            ));
        }
        let base_order = tensor.order() - 1;
        for (c, _) in &pending {
            if c.order() != base_order {
                return Err(format!("pending coord {c:?} has wrong order"));
            }
            for m in 0..base_order {
                if c.get(m) as usize >= tensor.shape().dim(m) {
                    return Err(format!("pending coord {c:?} out of bounds in mode {m}"));
                }
            }
        }
        let (members, values): (Vec<Coord>, Vec<f64>) = pending.into_iter().unzip();
        Ok(DiscreteWindow {
            tensor,
            period,
            window,
            boundary,
            pending: IndexedCoordSet::from_ordered_entries(members, values)?,
            last_arrival,
            periods_completed,
        })
    }
}

/// Captured raw state of a [`DiscreteWindow`] (see
/// [`DiscreteWindow::capture_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteWindowState {
    /// The window tensor (completed units) with exact iteration orders.
    pub tensor: SparseTensorState,
    /// Period `T`.
    pub period: u64,
    /// Window length `W`.
    pub window: usize,
    /// Exclusive upper bound of the accumulating unit.
    pub boundary: u64,
    /// The pending unit's accumulation, in arrival order.
    pub pending: Vec<(Coord, f64)>,
    /// Latest accepted arrival timestamp.
    pub last_arrival: Option<u64>,
    /// Completed periods so far.
    pub periods_completed: u64,
}

impl std::fmt::Debug for DiscreteWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DiscreteWindow(boundary={}, W={}, T={}, nnz={})",
            self.boundary,
            self.window,
            self.period,
            self.tensor.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(a: u32, v: f64, t: u64) -> StreamTuple {
        StreamTuple::new([a], v, t)
    }

    #[test]
    fn accumulates_within_period() {
        let mut w = DiscreteWindow::new(&[4], 3, 10);
        let mut out = Vec::new();
        w.ingest(tup(1, 2.0, 3), &mut out).unwrap();
        w.ingest(tup(1, 3.0, 7), &mut out).unwrap();
        assert!(out.is_empty());
        // Conventional model: the tensor does not change mid-period.
        assert_eq!(w.tensor().nnz(), 0);
        // Once the period completes, the aggregated unit appears at W−1.
        w.flush_to(10, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].slice, vec![(Coord::new(&[1]), 5.0)]);
        assert_eq!(w.tensor().get(&Coord::new(&[1, 2])), 5.0);
    }

    #[test]
    fn boundary_tuple_belongs_to_closing_period() {
        // Interval is (0, T]; a tuple at exactly T is inside unit 1.
        let mut w = DiscreteWindow::new(&[4], 2, 10);
        let mut out = Vec::new();
        w.ingest(tup(0, 1.0, 10), &mut out).unwrap();
        assert!(out.is_empty());
        w.ingest(tup(0, 1.0, 11), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].boundary, 10);
        assert_eq!(out[0].slice, vec![(Coord::new(&[0]), 1.0)]);
    }

    #[test]
    fn slide_moves_units_and_evicts() {
        let mut w = DiscreteWindow::new(&[4], 2, 10);
        let mut out = Vec::new();
        w.ingest(tup(0, 1.0, 5), &mut out).unwrap(); // unit ending 10
        w.ingest(tup(1, 2.0, 15), &mut out).unwrap(); // unit ending 20
        w.ingest(tup(2, 3.0, 25), &mut out).unwrap(); // unit ending 30
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].slice, vec![(Coord::new(&[0]), 1.0)]);
        assert_eq!(out[1].slice, vec![(Coord::new(&[1]), 2.0)]);
        // Window now holds units (0..10] at index 0 and (10..20] at index 1.
        assert_eq!(w.tensor().get(&Coord::new(&[0, 0])), 1.0);
        assert_eq!(w.tensor().get(&Coord::new(&[1, 1])), 2.0);
        // One more slide evicts the first unit.
        w.ingest(tup(3, 4.0, 35), &mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].evicted, vec![(Coord::new(&[0]), 1.0)]);
        assert_eq!(w.tensor().get(&Coord::new(&[0, 0])), 0.0);
        assert_eq!(w.tensor().get(&Coord::new(&[1, 0])), 2.0);
        assert_eq!(w.tensor().get(&Coord::new(&[2, 1])), 3.0);
    }

    #[test]
    fn empty_periods_complete_too() {
        let mut w = DiscreteWindow::new(&[4], 2, 10);
        let mut out = Vec::new();
        w.ingest(tup(0, 1.0, 5), &mut out).unwrap();
        w.ingest(tup(1, 1.0, 45), &mut out).unwrap(); // skips 3 boundaries
        assert_eq!(out.len(), 4); // periods ending 10, 20, 30, 40
        assert!(out[1].slice.is_empty());
        assert!(out[2].slice.is_empty());
        assert_eq!(w.periods_completed(), 4);
    }

    #[test]
    fn flush_completes_final_periods() {
        let mut w = DiscreteWindow::new(&[4], 2, 10);
        let mut out = Vec::new();
        w.ingest(tup(0, 1.0, 5), &mut out).unwrap();
        w.flush_to(10, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].slice, vec![(Coord::new(&[0]), 1.0)]);
    }

    #[test]
    fn validation_errors() {
        let mut w = DiscreteWindow::new(&[4], 2, 10);
        let mut out = Vec::new();
        w.ingest(tup(0, 1.0, 10), &mut out).unwrap();
        assert!(w.ingest(tup(0, 1.0, 5), &mut out).is_err());
        assert!(w.ingest(tup(9, 1.0, 12), &mut out).is_err());
        assert!(w.ingest(StreamTuple::new([0u32, 0], 1.0, 12), &mut out).is_err());
    }

    #[test]
    fn tensor_only_changes_at_boundaries() {
        // The discreteness limitation the paper motivates: a tuple at
        // 2:00:01 is not visible in the tensor until 3:00:00.
        let mut w = DiscreteWindow::new(&[4], 3, 3600);
        let mut out = Vec::new();
        w.ingest(tup(2, 4.0, 7201), &mut out).unwrap(); // "2:00:01"
        w.advance_to(10_799, &mut out); // "2:59:59"
        assert_eq!(w.tensor().nnz(), 0, "tuple visible before its period ends");
        w.advance_to(10_801, &mut out); // just past "3:00:00"
        assert_eq!(w.tensor().get(&Coord::new(&[2, 2])), 4.0);
    }
}
