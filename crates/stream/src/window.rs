//! Event-driven continuous tensor window (Algorithm 1 of the paper).

use crate::delta::{Changes, Delta, DeltaKind};
use crate::scheduler::{EventQueue, ScheduledEvent};
use crate::tuple::StreamTuple;
use crate::Result;
use sns_error::SnsError;
use sns_tensor::{Coord, Shape, SparseTensor, SparseTensorState};

/// The continuous tensor window `X = D(t, W)`.
///
/// Maintains the window under arriving tuples and the `W` scheduled
/// boundary crossings each tuple generates. Every change is returned as a
/// [`Delta`]; the window tensor is updated **before** deltas are handed
/// out, so consumers observe `X + ΔX`.
///
/// Complexities match Theorems 1–2 of the paper: `O(M·W)` time per tuple
/// amortized over its `W+1` events, `O(M·|active tuples|)` space.
///
/// `Clone` deep-copies the tensor, the pending event queue, and the
/// clock, so a clone continues bitwise-identically to the original —
/// engine snapshot/restore is built on this.
#[derive(Clone)]
pub struct ContinuousWindow {
    tensor: SparseTensor,
    period: u64,
    window: usize,
    queue: EventQueue,
    now: u64,
    last_arrival: Option<u64>,
    events_processed: u64,
}

impl ContinuousWindow {
    /// Creates a window over categorical mode lengths `base_dims`
    /// (`N₁,…,N_{M−1}`), with `window` time indices (`W`) of `period`
    /// ticks (`T`) each.
    ///
    /// # Panics
    /// Panics if `window == 0` or `period == 0`.
    pub fn new(base_dims: &[usize], window: usize, period: u64) -> Self {
        assert!(window > 0, "window size W must be positive");
        assert!(period > 0, "period T must be positive");
        let mut dims = base_dims.to_vec();
        dims.push(window);
        ContinuousWindow {
            tensor: SparseTensor::new(Shape::new(&dims)),
            period,
            window,
            queue: EventQueue::new(),
            now: 0,
            last_arrival: None,
            events_processed: 0,
        }
    }

    /// The current window tensor `D(t, W)`.
    #[inline]
    pub fn tensor(&self) -> &SparseTensor {
        &self.tensor
    }

    /// Current time (largest time the window has been advanced to).
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Period `T`.
    #[inline]
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Window length `W` (number of time-mode indices).
    #[inline]
    pub fn window_size(&self) -> usize {
        self.window
    }

    /// Index of the time mode (the last mode).
    #[inline]
    pub fn time_mode(&self) -> usize {
        self.tensor.shape().order() - 1
    }

    /// Number of tuples still inside the window (= pending events).
    pub fn active_tuples(&self) -> usize {
        self.queue.len()
    }

    /// Total events processed so far (arrivals + shifts + expiries).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn validate(&self, tuple: &StreamTuple) -> Result<()> {
        let base_order = self.time_mode();
        if tuple.coords.order() != base_order {
            return Err(SnsError::OrderMismatch {
                expected: base_order,
                got: tuple.coords.order(),
            });
        }
        for m in 0..base_order {
            let len = self.tensor.shape().dim(m);
            if tuple.coords.get(m) as usize >= len {
                return Err(SnsError::OutOfBounds { mode: m, index: tuple.coords.get(m), len });
            }
        }
        if let Some(prev) = self.last_arrival {
            if tuple.time < prev {
                return Err(SnsError::OutOfOrder { previous: prev, got: tuple.time });
            }
        }
        Ok(())
    }

    /// Advances the clock to `t`, draining all boundary events due at or
    /// before `t` and appending their deltas to `out`.
    pub fn advance_to(&mut self, t: u64, out: &mut Vec<Delta>) {
        debug_assert!(t >= self.now, "clock cannot run backwards");
        while let Some(ev) = self.queue.pop_due(t) {
            let w = ev.w;
            let time_mode = self.time_mode();
            let v = ev.tuple.value;
            let wsz = self.window as u32;
            // 0-based: subtract from index W−w, add to index W−w−1.
            let from = ev.tuple.coords.extended(wsz - w);
            let delta = if w < wsz {
                let to = ev.tuple.coords.extended(wsz - w - 1);
                self.tensor.add(&from, -v);
                self.tensor.add(&to, v);
                self.queue.schedule(ev.tuple.time + (w as u64 + 1) * self.period, w + 1, ev.tuple);
                Delta {
                    time: ev.due,
                    kind: DeltaKind::Shift,
                    w,
                    tuple: ev.tuple,
                    changes: Changes::two(from, -v, to, v),
                }
            } else {
                // w == W: the tuple leaves the window (index 0).
                debug_assert_eq!(from.get(time_mode), 0);
                self.tensor.add(&from, -v);
                Delta {
                    time: ev.due,
                    kind: DeltaKind::Expiry,
                    w,
                    tuple: ev.tuple,
                    changes: Changes::one(from, -v),
                }
            };
            self.events_processed += 1;
            out.push(delta);
        }
        self.now = self.now.max(t);
    }

    /// Ingests one tuple: first drains all boundary events due at or
    /// before `tuple.time`, then applies the arrival (S.1) and schedules
    /// its first boundary crossing. All deltas are appended to `out` in
    /// the order they were applied.
    ///
    /// # Errors
    /// Rejects out-of-order tuples and coordinates that do not fit the
    /// declared shape.
    pub fn ingest(&mut self, tuple: StreamTuple, out: &mut Vec<Delta>) -> Result<()> {
        self.validate(&tuple)?;
        self.advance_to(tuple.time, out);
        self.last_arrival = Some(tuple.time);

        let coord = tuple.coords.extended(self.window as u32 - 1);
        self.tensor.add(&coord, tuple.value);
        self.queue.schedule(tuple.time + self.period, 1, tuple);
        self.events_processed += 1;
        out.push(Delta {
            time: tuple.time,
            kind: DeltaKind::Arrival,
            w: 0,
            tuple,
            changes: Changes::one(coord, tuple.value),
        });
        Ok(())
    }

    /// Convenience wrapper returning the deltas as a fresh vector.
    pub fn ingest_vec(&mut self, tuple: StreamTuple) -> Result<Vec<Delta>> {
        let mut out = Vec::with_capacity(2);
        self.ingest(tuple, &mut out)?;
        Ok(out)
    }

    /// Captures the complete window state — tensor (with iteration
    /// orders), pending boundary events, and clock — for durable
    /// serialization. [`ContinuousWindow::from_state`] rebuilds a window
    /// that continues bitwise-identically.
    pub fn capture_state(&self) -> ContinuousWindowState {
        ContinuousWindowState {
            tensor: self.tensor.capture_state(),
            period: self.period,
            window: self.window,
            events: self.queue.events_in_order(),
            next_seq: self.queue.next_seq(),
            now: self.now,
            last_arrival: self.last_arrival,
            events_processed: self.events_processed,
        }
    }

    /// Rebuilds a window from captured state.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency (decoded
    /// snapshots are validated, not trusted).
    pub fn from_state(state: ContinuousWindowState) -> std::result::Result<Self, String> {
        let ContinuousWindowState {
            tensor,
            period,
            window,
            events,
            next_seq,
            now,
            last_arrival,
            events_processed,
        } = state;
        if window == 0 || period == 0 {
            return Err(format!("degenerate window geometry W={window} T={period}"));
        }
        let tensor = SparseTensor::from_state(tensor)?;
        if tensor.shape().dim(tensor.order() - 1) != window {
            return Err(format!(
                "time mode length {} does not match W={window}",
                tensor.shape().dim(tensor.order() - 1)
            ));
        }
        let base_order = tensor.order() - 1;
        for ev in &events {
            if ev.w == 0 || ev.w > window as u32 {
                return Err(format!("scheduled boundary w={} outside 1..={window}", ev.w));
            }
            if ev.seq >= next_seq {
                return Err(format!("event seq {} not below next_seq {next_seq}", ev.seq));
            }
            let coords = &ev.tuple.coords;
            if coords.order() != base_order {
                return Err(format!("event coord {coords:?} has wrong order"));
            }
            for m in 0..base_order {
                if coords.get(m) as usize >= tensor.shape().dim(m) {
                    return Err(format!("event coord {coords:?} out of bounds in mode {m}"));
                }
            }
        }
        Ok(ContinuousWindow {
            tensor,
            period,
            window,
            queue: EventQueue::from_events(events, next_seq),
            now,
            last_arrival,
            events_processed,
        })
    }
}

/// Captured raw state of a [`ContinuousWindow`] (see
/// [`ContinuousWindow::capture_state`]). Events are listed in `(due,
/// seq)` order — the queue's pop order — which makes the encoding
/// canonical.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousWindowState {
    /// The window tensor with exact iteration orders.
    pub tensor: SparseTensorState,
    /// Period `T`.
    pub period: u64,
    /// Window length `W`.
    pub window: usize,
    /// Pending boundary events in pop order.
    pub events: Vec<ScheduledEvent>,
    /// The queue's FIFO tie-break counter.
    pub next_seq: u64,
    /// Current clock.
    pub now: u64,
    /// Latest accepted arrival timestamp.
    pub last_arrival: Option<u64>,
    /// Total events processed so far.
    pub events_processed: u64,
}

impl std::fmt::Debug for ContinuousWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ContinuousWindow(t={}, W={}, T={}, nnz={}, active={})",
            self.now,
            self.window,
            self.period,
            self.tensor.nnz(),
            self.active_tuples()
        )
    }
}

/// Brute-force reference: builds `D(t, W)` directly from Definitions 3–4,
/// i.e. tuple `n` contributes to unit `k = W−1−⌊(t−tₙ)/T⌋` iff
/// `tₙ ∈ (t − W·T, t]`. Used by tests to pin the event-driven
/// implementation to the declarative model.
pub fn window_from_log(
    base_dims: &[usize],
    window: usize,
    period: u64,
    tuples: &[StreamTuple],
    t: u64,
) -> SparseTensor {
    let mut dims = base_dims.to_vec();
    dims.push(window);
    let mut x = SparseTensor::new(Shape::new(&dims));
    for tu in tuples {
        if tu.time > t {
            continue;
        }
        let age = t - tu.time;
        let crossings = age / period;
        if crossings >= window as u64 {
            continue; // left the window
        }
        let k = window as u64 - 1 - crossings;
        let coord: Coord = tu.coords.extended(k as u32);
        x.add(&coord, tu.value);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(a: u32, b: u32, v: f64, t: u64) -> StreamTuple {
        StreamTuple::new([a, b], v, t)
    }

    fn full(c: &[u32]) -> Coord {
        Coord::new(c)
    }

    #[test]
    fn arrival_lands_in_newest_unit() {
        let mut w = ContinuousWindow::new(&[3, 3], 4, 10);
        let mut out = Vec::new();
        w.ingest(tup(1, 2, 5.0, 7), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, DeltaKind::Arrival);
        assert_eq!(w.tensor().get(&full(&[1, 2, 3])), 5.0);
        assert_eq!(w.tensor().nnz(), 1);
        assert_eq!(w.active_tuples(), 1);
    }

    #[test]
    fn tuple_slides_through_all_units_and_expires() {
        let mut w = ContinuousWindow::new(&[2, 2], 3, 10);
        let mut out = Vec::new();
        w.ingest(tup(0, 1, 2.0, 0), &mut out).unwrap();
        // At t=9 (just before the boundary) nothing has moved.
        out.clear();
        w.advance_to(9, &mut out);
        assert!(out.is_empty());
        assert_eq!(w.tensor().get(&full(&[0, 1, 2])), 2.0);
        // At t=10 the first crossing fires: unit 2 → unit 1.
        w.advance_to(10, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, DeltaKind::Shift);
        assert_eq!(out[0].w, 1);
        assert_eq!(w.tensor().get(&full(&[0, 1, 2])), 0.0);
        assert_eq!(w.tensor().get(&full(&[0, 1, 1])), 2.0);
        // Second crossing at t=20: unit 1 → unit 0.
        out.clear();
        w.advance_to(25, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(w.tensor().get(&full(&[0, 1, 0])), 2.0);
        // Expiry at t=30.
        out.clear();
        w.advance_to(30, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, DeltaKind::Expiry);
        assert_eq!(out[0].w, 3);
        assert_eq!(w.tensor().nnz(), 0);
        assert_eq!(w.active_tuples(), 0);
        // Total events: 1 arrival + 3 crossings (the last is the expiry).
        assert_eq!(w.events_processed(), 4);
    }

    #[test]
    fn shift_delta_reports_both_entries() {
        let mut w = ContinuousWindow::new(&[2, 2], 3, 5);
        let mut out = Vec::new();
        w.ingest(tup(1, 1, 4.0, 2), &mut out).unwrap();
        out.clear();
        w.advance_to(7, &mut out);
        let d = &out[0];
        assert_eq!(d.changes.len(), 2);
        let ch = d.changes.as_slice();
        assert_eq!(ch[0], (full(&[1, 1, 2]), -4.0));
        assert_eq!(ch[1], (full(&[1, 1, 1]), 4.0));
        let tidx: Vec<u32> = d.time_indices().collect();
        assert_eq!(tidx, vec![2, 1]);
    }

    #[test]
    fn ingest_drains_due_events_first() {
        let mut w = ContinuousWindow::new(&[2, 2], 2, 10);
        let mut out = Vec::new();
        w.ingest(tup(0, 0, 1.0, 0), &mut out).unwrap();
        out.clear();
        // Second tuple at t=25: the first tuple's crossings at 10 and 20
        // must fire before the new arrival is applied.
        w.ingest(tup(1, 1, 1.0, 25), &mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].kind, DeltaKind::Shift); // t=10
        assert_eq!(out[0].time, 10);
        assert_eq!(out[1].kind, DeltaKind::Expiry); // t=20
        assert_eq!(out[1].time, 20);
        assert_eq!(out[2].kind, DeltaKind::Arrival); // t=25
    }

    #[test]
    fn values_accumulate_within_a_unit() {
        let mut w = ContinuousWindow::new(&[2, 2], 3, 10);
        let mut out = Vec::new();
        w.ingest(tup(0, 0, 1.0, 0), &mut out).unwrap();
        w.ingest(tup(0, 0, 2.0, 3), &mut out).unwrap();
        assert_eq!(w.tensor().get(&full(&[0, 0, 2])), 3.0);
        // They separate once the first one crosses (different schedules).
        out.clear();
        w.advance_to(10, &mut out); // first tuple crosses at 10
        assert_eq!(w.tensor().get(&full(&[0, 0, 2])), 2.0);
        assert_eq!(w.tensor().get(&full(&[0, 0, 1])), 1.0);
        w.advance_to(13, &mut out); // second crosses at 13
        assert_eq!(w.tensor().get(&full(&[0, 0, 1])), 3.0);
    }

    #[test]
    fn rejects_out_of_order_and_bad_coords() {
        let mut w = ContinuousWindow::new(&[2, 2], 2, 10);
        let mut out = Vec::new();
        w.ingest(tup(0, 0, 1.0, 10), &mut out).unwrap();
        assert!(matches!(w.ingest(tup(0, 0, 1.0, 9), &mut out), Err(SnsError::OutOfOrder { .. })));
        assert!(matches!(
            w.ingest(tup(5, 0, 1.0, 11), &mut out),
            Err(SnsError::OutOfBounds { .. })
        ));
        assert!(matches!(
            w.ingest(StreamTuple::new([0u32], 1.0, 11), &mut out),
            Err(SnsError::OrderMismatch { .. })
        ));
        // Equal timestamps are fine (chronological, not strictly increasing).
        w.ingest(tup(1, 1, 1.0, 10), &mut out).unwrap();
    }

    #[test]
    fn matches_bruteforce_reference_on_random_stream() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut tuples = Vec::new();
        let mut t = 0u64;
        for _ in 0..300 {
            t += rng.gen_range(0..7);
            tuples.push(tup(rng.gen_range(0..4), rng.gen_range(0..3), 1.0, t));
        }
        let (window, period) = (5usize, 13u64);
        let mut w = ContinuousWindow::new(&[4, 3], window, period);
        let mut out = Vec::new();
        for (i, tu) in tuples.iter().enumerate() {
            w.ingest(*tu, &mut out).unwrap();
            if i % 37 == 0 {
                let reference = window_from_log(&[4, 3], window, period, &tuples[..=i], tu.time);
                assert_eq!(w.tensor().nnz(), reference.nnz(), "at tuple {i}");
                for (c, v) in reference.iter() {
                    assert_eq!(w.tensor().get(c), v, "at tuple {i}, coord {c:?}");
                }
                w.tensor().check_invariants().unwrap();
            }
        }
        // Also check at a few post-stream times.
        for extra in [1u64, period, 3 * period, window as u64 * period + 1] {
            let t_end = t + extra;
            w.advance_to(t_end, &mut out);
            let reference = window_from_log(&[4, 3], window, period, &tuples, t_end);
            assert_eq!(w.tensor().nnz(), reference.nnz(), "t_end={t_end}");
            for (c, v) in reference.iter() {
                assert_eq!(w.tensor().get(c), v);
            }
        }
        // After W·T with no arrivals the window must be empty.
        assert_eq!(w.tensor().nnz(), 0);
        assert_eq!(w.active_tuples(), 0);
    }

    #[test]
    fn deltas_apply_window_before_handing_out() {
        // The documented contract: when the consumer sees the delta, the
        // window already contains X + ΔX.
        let mut w = ContinuousWindow::new(&[2, 2], 2, 10);
        let mut out = Vec::new();
        w.ingest(tup(0, 0, 3.0, 0), &mut out).unwrap();
        let d = out[0];
        let (c, v) = d.changes.as_slice()[0];
        assert_eq!(w.tensor().get(&c), v);
    }

    #[test]
    fn ingest_vec_convenience() {
        let mut w = ContinuousWindow::new(&[2, 2], 2, 10);
        let out = w.ingest_vec(tup(0, 0, 1.0, 0)).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    #[should_panic(expected = "window size W")]
    fn zero_window_rejected() {
        let _ = ContinuousWindow::new(&[2], 0, 10);
    }

    #[test]
    #[should_panic(expected = "period T")]
    fn zero_period_rejected() {
        let _ = ContinuousWindow::new(&[2], 2, 0);
    }
}
