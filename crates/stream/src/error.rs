//! Errors for stream processing.

use std::fmt;

/// Errors raised by the window models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Tuples must arrive in chronological order (Definition 1).
    OutOfOrder {
        /// Timestamp of the latest previously ingested tuple.
        previous: u64,
        /// Timestamp of the offending tuple.
        got: u64,
    },
    /// A tuple's categorical coordinate order does not match the window.
    OrderMismatch {
        /// Expected number of categorical modes (`M − 1`).
        expected: usize,
        /// Received number of categorical modes.
        got: usize,
    },
    /// A tuple's categorical coordinate is outside the declared shape.
    OutOfBounds {
        /// Offending mode.
        mode: usize,
        /// Offending index.
        index: u32,
        /// Length of that mode.
        len: usize,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::OutOfOrder { previous, got } => {
                write!(f, "out-of-order tuple: time {got} after {previous}")
            }
            StreamError::OrderMismatch { expected, got } => {
                write!(f, "tuple has {got} categorical modes, window expects {expected}")
            }
            StreamError::OutOfBounds { mode, index, len } => {
                write!(f, "index {index} out of bounds for mode {mode} (length {len})")
            }
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(StreamError::OutOfOrder { previous: 5, got: 3 }.to_string().contains("3"));
        assert!(StreamError::OrderMismatch { expected: 2, got: 3 }.to_string().contains("2"));
        assert!(StreamError::OutOfBounds { mode: 1, index: 9, len: 4 }
            .to_string()
            .contains("mode 1"));
    }
}
