//! Event queue for the continuous tensor model.
//!
//! Algorithm 1 schedules, for each tuple, its next unit-boundary crossing.
//! This is a min-heap on `(due time, sequence)`; the sequence number makes
//! the pop order deterministic among simultaneous events (FIFO), which in
//! turn makes whole experiment runs reproducible.

use crate::tuple::StreamTuple;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled `w`-th boundary update for a tuple (fires at
/// `tuple.time + w·T`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledEvent {
    /// Absolute time at which the event fires.
    pub due: u64,
    /// FIFO tie-breaker among events with equal `due`.
    pub seq: u64,
    /// Which boundary this crossing is (`1 ..= W`).
    pub w: u32,
    /// The originating tuple.
    pub tuple: StreamTuple,
}

impl Eq for ScheduledEvent {}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-due first.
        other.due.cmp(&self.due).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of scheduled events with FIFO tie-breaking.
///
/// `Clone` performs a deep copy; because pop order is the total order on
/// `(due, seq)`, a clone replays exactly the same event sequence as the
/// original — the property engine snapshots rely on.
#[derive(Debug, Default, Clone)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending events (one per active tuple, Theorem 2).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules the `w`-th update for `tuple` at absolute time `due`.
    pub fn schedule(&mut self, due: u64, w: u32, tuple: StreamTuple) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { due, seq, w, tuple });
    }

    /// Pops the next event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: u64) -> Option<ScheduledEvent> {
        if self.heap.peek().is_some_and(|e| e.due <= now) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// Earliest pending due time, if any.
    pub fn peek_due(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.due)
    }

    /// All pending events, sorted by `(due, seq)` — the exact pop order.
    /// Pop order is the total order on `(due, seq)` regardless of the
    /// heap's internal layout, so this canonical listing plus
    /// [`EventQueue::from_events`] reproduces the queue's behaviour
    /// bitwise (engine state capture).
    pub fn events_in_order(&self) -> Vec<ScheduledEvent> {
        let mut events: Vec<ScheduledEvent> = self.heap.iter().copied().collect();
        events.sort_unstable_by_key(|e| (e.due, e.seq));
        events
    }

    /// Sequence number the next [`EventQueue::schedule`] call will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Rebuilds a queue from captured events and the sequence counter.
    /// The heap layout may differ from the captured queue's, but the pop
    /// order — all that downstream code can observe — is identical.
    pub fn from_events(events: Vec<ScheduledEvent>, next_seq: u64) -> Self {
        EventQueue { heap: events.into(), next_seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(t: u64) -> StreamTuple {
        StreamTuple::new([0u32], 1.0, t)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 1, tup(0));
        q.schedule(10, 1, tup(0));
        q.schedule(20, 1, tup(0));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_due(), Some(10));
        assert_eq!(q.pop_due(100).unwrap().due, 10);
        assert_eq!(q.pop_due(100).unwrap().due, 20);
        assert_eq!(q.pop_due(100).unwrap().due, 30);
        assert!(q.pop_due(100).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn respects_now_cutoff() {
        let mut q = EventQueue::new();
        q.schedule(10, 1, tup(0));
        q.schedule(20, 1, tup(0));
        assert!(q.pop_due(5).is_none());
        assert!(q.pop_due(10).is_some()); // due == now fires
        assert!(q.pop_due(19).is_none());
        assert!(q.pop_due(20).is_some());
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        let a = StreamTuple::new([1u32], 1.0, 0);
        let b = StreamTuple::new([2u32], 1.0, 0);
        let c = StreamTuple::new([3u32], 1.0, 0);
        q.schedule(10, 1, a);
        q.schedule(10, 1, b);
        q.schedule(10, 1, c);
        assert_eq!(q.pop_due(10).unwrap().tuple, a);
        assert_eq!(q.pop_due(10).unwrap().tuple, b);
        assert_eq!(q.pop_due(10).unwrap().tuple, c);
    }
}
