//! # sns-stream
//!
//! The *continuous tensor model* of SliceNStitch (Section IV of the paper)
//! plus the conventional discrete window model used by the baselines.
//!
//! A multi-aspect data stream is a chronological sequence of timestamped
//! tuples `(i₁,…,i_{M−1}, v, t)` ([`StreamTuple`]). Given a period `T` and
//! window size `W`, the *tensor window* `D(t, W)` concatenates the `W`
//! latest *tensor units*, each aggregating the tuples of one period — but
//! with unit boundaries anchored at the **current time** `t`, not at fixed
//! wall-clock multiples. Consequently every arriving tuple changes the
//! window immediately, and each tuple later crosses `W` unit boundaries as
//! time advances.
//!
//! [`ContinuousWindow`] implements the event-driven maintenance of
//! Algorithm 1: each tuple costs `O(MW)` spread over `W+1` events, each of
//! which changes at most two entries of the window. Every change is
//! reported as a [`Delta`] so that downstream CPD algorithms can react
//! per-event (Problem 2 of the paper).
//!
//! [`DiscreteWindow`] implements the conventional model (Section III):
//! units end at fixed multiples of `T`, the window only changes once per
//! period, and each completed period is reported as a [`PeriodUpdate`].

pub mod delta;
pub mod discrete;
pub mod scheduler;
pub mod tuple;
pub mod window;

pub use delta::{Delta, DeltaKind};
pub use discrete::{DiscreteWindow, DiscreteWindowState, PeriodUpdate};
pub use scheduler::{EventQueue, ScheduledEvent};
pub use sns_error::SnsError;
pub use tuple::StreamTuple;
pub use window::{window_from_log, ContinuousWindow, ContinuousWindowState};

/// Result alias for stream operations, carrying the workspace-wide
/// [`SnsError`].
pub type Result<T> = std::result::Result<T, SnsError>;
