//! Property-based tests pinning the event-driven continuous window
//! (Algorithm 1) to the declarative model of Definitions 3–5, under
//! arbitrary chronological streams.

use proptest::prelude::*;
use sns_stream::{window_from_log, ContinuousWindow, DiscreteWindow, StreamTuple};
use sns_tensor::Coord;

/// Strategy: a chronological stream of up to `n` tuples over a 4×3 base
/// shape with inter-arrival gaps in `0..gap` and values in {1,2,3}.
fn stream_strategy(n: usize, gap: u64) -> impl Strategy<Value = Vec<StreamTuple>> {
    proptest::collection::vec((0u32..4, 0u32..3, 1u8..4, 0u64..gap), 0..n).prop_map(|raw| {
        let mut t = 0u64;
        raw.into_iter()
            .map(|(a, b, v, dt)| {
                t += dt;
                StreamTuple::new([a, b], v as f64, t)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event-driven window equals the brute-force `D(t, W)` at every
    /// arrival time and at arbitrary later times.
    #[test]
    fn continuous_window_matches_definition(
        tuples in stream_strategy(120, 9),
        window in 1usize..6,
        period in 1u64..15,
        extra in 0u64..80,
    ) {
        let mut w = ContinuousWindow::new(&[4, 3], window, period);
        let mut out = Vec::new();
        for tu in &tuples {
            w.ingest(*tu, &mut out).unwrap();
        }
        let t_end = tuples.last().map_or(0, |tu| tu.time) + extra;
        w.advance_to(t_end, &mut out);
        let reference = window_from_log(&[4, 3], window, period, &tuples, t_end);
        prop_assert_eq!(w.tensor().nnz(), reference.nnz());
        for (c, v) in reference.iter() {
            prop_assert_eq!(w.tensor().get(c), v);
        }
        w.tensor().check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Conservation: every tuple contributes exactly +v on arrival and −v
    /// on expiry, so the sum of all window entries equals the sum of the
    /// values of tuples still inside `(t − W·T, t]`.
    #[test]
    fn window_mass_conservation(
        tuples in stream_strategy(100, 6),
        window in 1usize..5,
        period in 1u64..10,
    ) {
        let mut w = ContinuousWindow::new(&[4, 3], window, period);
        let mut out = Vec::new();
        for (i, tu) in tuples.iter().enumerate() {
            w.ingest(*tu, &mut out).unwrap();
            let t = tu.time;
            // Only tuples ingested so far can contribute (equal timestamps
            // later in the stream are not yet in the window).
            let expected: f64 = tuples[..=i]
                .iter()
                .filter(|u| t - u.time < window as u64 * period)
                .map(|u| u.value)
                .sum();
            let total: f64 = w.tensor().iter().map(|(_, v)| v).sum();
            prop_assert!((total - expected).abs() < 1e-9);
        }
    }

    /// Every delta has the documented structure: arrivals add +v at the
    /// newest unit, shifts move v between adjacent units, expiries remove
    /// −v at unit 0; and the number of events per tuple is exactly W+1.
    #[test]
    fn delta_structure(
        tuples in stream_strategy(60, 5),
        window in 1usize..5,
        period in 1u64..8,
    ) {
        use sns_stream::DeltaKind;
        let mut w = ContinuousWindow::new(&[4, 3], window, period);
        let mut out = Vec::new();
        for tu in &tuples {
            w.ingest(*tu, &mut out).unwrap();
        }
        // Drain everything.
        let t_end = tuples.last().map_or(0, |tu| tu.time) + window as u64 * period + 1;
        w.advance_to(t_end, &mut out);
        let wsz = window as u32;
        let mut arrivals = 0usize;
        let mut expiries = 0usize;
        let mut shifts = 0usize;
        for d in &out {
            match d.kind {
                DeltaKind::Arrival => {
                    arrivals += 1;
                    prop_assert_eq!(d.changes.len(), 1);
                    let (c, v) = d.changes.as_slice()[0];
                    prop_assert_eq!(c.get(c.order() - 1), wsz - 1);
                    prop_assert_eq!(v, d.tuple.value);
                }
                DeltaKind::Shift => {
                    shifts += 1;
                    prop_assert_eq!(d.changes.len(), 2);
                    let ch = d.changes.as_slice();
                    let tm = ch[0].0.order() - 1;
                    prop_assert_eq!(ch[0].0.get(tm), ch[1].0.get(tm) + 1);
                    prop_assert_eq!(ch[0].1, -d.tuple.value);
                    prop_assert_eq!(ch[1].1, d.tuple.value);
                }
                DeltaKind::Expiry => {
                    expiries += 1;
                    prop_assert_eq!(d.changes.len(), 1);
                    let (c, v) = d.changes.as_slice()[0];
                    prop_assert_eq!(c.get(c.order() - 1), 0);
                    prop_assert_eq!(v, -d.tuple.value);
                }
            }
        }
        prop_assert_eq!(arrivals, tuples.len());
        prop_assert_eq!(expiries, tuples.len());
        prop_assert_eq!(shifts, tuples.len() * (window - 1));
        prop_assert_eq!(w.tensor().nnz(), 0);
    }

    /// The discrete window's slice stream partitions tuple mass: summing
    /// all completed slices plus the pending remainder equals the total
    /// ingested mass.
    #[test]
    fn discrete_window_partitions_mass(
        tuples in stream_strategy(80, 7),
        window in 1usize..5,
        period in 1u64..12,
    ) {
        let mut w = DiscreteWindow::new(&[4, 3], window, period);
        let mut updates = Vec::new();
        for tu in &tuples {
            w.ingest(*tu, &mut updates).unwrap();
        }
        let t_end = tuples.last().map_or(0, |tu| tu.time);
        w.flush_to(t_end, &mut updates);
        let sliced: f64 = updates.iter().flat_map(|u| &u.slice).map(|&(_, v)| v).sum();
        let total: f64 = tuples.iter().map(|u| u.value).sum();
        // Pending = tuples after the last completed boundary (all tuples,
        // including any at time 0, when nothing has completed yet).
        let completed_until = updates.last().map(|u| u.boundary);
        let pending: f64 = tuples
            .iter()
            .filter(|u| completed_until.is_none_or(|b| u.time > b))
            .map(|u| u.value)
            .sum();
        prop_assert!((sliced + pending - total).abs() < 1e-9);
        // Slice coordinates are categorical (order M−1).
        for u in &updates {
            for (c, _) in &u.slice {
                prop_assert_eq!(c.order(), 2);
            }
        }
        let _ = Coord::new(&[0, 0]);
    }
}
