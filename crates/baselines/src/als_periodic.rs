//! Periodic batch ALS — the paper's "ALS" reference.
//!
//! Once per period, runs `sweeps` full ALS iterations on the current
//! window, warm-started from the previous factors (after the time-factor
//! slide). With enough sweeps this is the fitness gold standard the
//! paper's *relative fitness* is measured against; with `sweeps = 1` it
//! is the cheapest conventional online treatment.

use crate::periodic::{slide_time_factor, PeriodicCpd};
use sns_core::als::als_sweep;
use sns_core::grams::compute_grams;
use sns_core::kruskal::KruskalTensor;
use sns_linalg::Mat;
use sns_stream::PeriodUpdate;
use sns_tensor::SparseTensor;

/// Periodic warm-started batch ALS.
pub struct AlsPeriodic {
    kruskal: KruskalTensor,
    grams: Vec<Mat>,
    sweeps: usize,
}

impl AlsPeriodic {
    /// Creates the baseline with random factors; `dims` must include the
    /// time mode (length `W`) as the last mode.
    pub fn new(dims: &[usize], rank: usize, sweeps: usize, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let kruskal = KruskalTensor::random(&mut rng, dims, rank, 1.0);
        let grams = compute_grams(&kruskal.factors);
        AlsPeriodic { kruskal, grams, sweeps }
    }

    /// Number of ALS sweeps per period.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Rebuilds the baseline from captured state (bitwise continuation).
    pub(crate) fn from_state(kruskal: KruskalTensor, grams: Vec<Mat>, sweeps: usize) -> Self {
        AlsPeriodic { kruskal, grams, sweeps }
    }
}

impl PeriodicCpd for AlsPeriodic {
    fn on_period(&mut self, window: &SparseTensor, update: &PeriodUpdate) {
        let tm = self.kruskal.order() - 1;
        slide_time_factor(&mut self.kruskal, &mut self.grams, tm);
        // A zeroed newest time row annihilates the MTTKRP of the newest
        // unit (and with it the whole sweep on sparse windows): seed it by
        // least squares from the new slice first.
        crate::periodic::solve_new_time_row(&mut self.kruskal, &mut self.grams, update);
        for _ in 0..self.sweeps {
            als_sweep(window, &mut self.kruskal, &mut self.grams);
        }
    }

    fn kruskal(&self) -> &KruskalTensor {
        &self.kruskal
    }

    fn grams(&self) -> &[Mat] {
        &self.grams
    }

    fn name(&self) -> String {
        format!("ALS({})", self.sweeps)
    }

    fn install(&mut self, kruskal: KruskalTensor, grams: Vec<Mat>) {
        self.kruskal = kruskal;
        self.grams = grams;
    }

    fn capture(&self) -> Result<crate::state::BaselineAlgoState, sns_stream::SnsError> {
        Ok(crate::state::BaselineAlgoState::AlsPeriodic {
            kruskal: self.kruskal.clone(),
            grams: self.grams.clone(),
            sweeps: self.sweeps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_stream::{DiscreteWindow, StreamTuple};

    #[test]
    fn fits_the_window_per_period() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut w = DiscreteWindow::new(&[6, 5], 4, 10);
        let mut alg = AlsPeriodic::new(&[6, 5, 4], 3, 8, 6);
        let mut updates = Vec::new();
        for t in 0..400u64 {
            let tu = StreamTuple::new([rng.gen_range(0..6u32), rng.gen_range(0..5u32)], 1.0, t);
            updates.clear();
            w.ingest(tu, &mut updates).unwrap();
            for u in &updates {
                alg.on_period(w.tensor(), u);
            }
        }
        let fit = alg.fitness(w.tensor());
        assert!(fit > 0.2, "periodic ALS fitness {fit}");
        assert!(alg.kruskal().is_finite());
        assert_eq!(alg.name(), "ALS(8)");
    }
}
