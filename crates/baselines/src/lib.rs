//! # sns-baselines
//!
//! Conventional online CPD baselines, updated **once per period** on the
//! discrete sliding window — the comparison targets of the paper's
//! evaluation (Section VI): batch ALS, OnlineSCP, CP-stream, and NeCPD(n).
//!
//! All four were originally designed for growing tensors; the paper
//! "modified the baselines, which are for decomposing the entire tensor,
//! to decompose the tensor window", and we adapt each the same way (see
//! the per-module docs for the exact windowing rules). What matters for
//! the reproduction is preserved exactly:
//!
//! - update **cadence**: once per period `T`, never in between, so any
//!   event waits up to `T` before it influences the factors;
//! - per-update **cost scale**: ALS and OnlineSCP sweep window non-zeros,
//!   CP-stream and NeCPD touch only the new slice;
//! - output form: a windowed Kruskal factorization whose fitness is
//!   measured on the same tensor window as SliceNStitch's.

pub mod als_periodic;
pub mod cpstream;
pub mod engine;
pub mod necpd;
pub mod onlinescp;
pub mod periodic;
pub mod state;

pub use als_periodic::AlsPeriodic;
pub use cpstream::CpStream;
pub use engine::BaselineEngine;
pub use necpd::NeCpd;
pub use onlinescp::OnlineScp;
pub use periodic::PeriodicCpd;
pub use state::{BaselineAlgoState, BaselineEngineState};
