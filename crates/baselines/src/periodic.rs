//! The once-per-period update interface shared by all baselines.

use crate::state::BaselineAlgoState;
use sns_core::kruskal::KruskalTensor;
use sns_linalg::Mat;
use sns_stream::{PeriodUpdate, SnsError};
use sns_tensor::SparseTensor;

/// A conventional online CPD algorithm: reacts only when a period
/// completes and the window slides by one unit.
pub trait PeriodicCpd {
    /// Called once per completed period. `window` is the post-slide
    /// discrete window (completed units only); `update` carries the new
    /// slice and the evicted unit.
    fn on_period(&mut self, window: &SparseTensor, update: &PeriodUpdate);

    /// Current factorization (time factor has `W` rows aligned with the
    /// window's time indices).
    fn kruskal(&self) -> &KruskalTensor;

    /// Gram matrices of the current factors.
    fn grams(&self) -> &[Mat];

    /// Algorithm display name.
    fn name(&self) -> String;

    /// Installs a warm-started factorization.
    fn install(&mut self, kruskal: KruskalTensor, grams: Vec<Mat>);

    /// Captures the algorithm's carried-forward state
    /// ([`BaselineAlgoState`]) so the baseline can be frozen and resumed
    /// bitwise-identically. All four workspace baselines implement this;
    /// the default is the **explicit opt-out** for external algorithms
    /// whose internals have no capture path.
    fn capture(&self) -> Result<BaselineAlgoState, SnsError> {
        Err(SnsError::SnapshotUnsupported { engine: self.name() })
    }

    /// Fitness against a window tensor.
    fn fitness(&self, window: &SparseTensor) -> f64 {
        sns_core::fitness::fitness_with_grams(window, self.kruskal(), self.grams())
    }
}

/// Boxed baselines are baselines too, so `BaselineEngine<Box<dyn
/// PeriodicCpd>>` can wrap a runtime-chosen algorithm.
impl<P: PeriodicCpd + ?Sized> PeriodicCpd for Box<P> {
    fn on_period(&mut self, window: &SparseTensor, update: &PeriodUpdate) {
        (**self).on_period(window, update)
    }

    fn kruskal(&self) -> &KruskalTensor {
        (**self).kruskal()
    }

    fn grams(&self) -> &[Mat] {
        (**self).grams()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn install(&mut self, kruskal: KruskalTensor, grams: Vec<Mat>) {
        (**self).install(kruskal, grams)
    }

    fn capture(&self) -> Result<BaselineAlgoState, SnsError> {
        (**self).capture()
    }

    fn fitness(&self, window: &SparseTensor) -> f64 {
        (**self).fitness(window)
    }
}

/// Shifts the time factor one row up (window slide) and refreshes its
/// Gram: row `k ← k+1`, last row zeroed. Shared by every baseline.
pub fn slide_time_factor(kruskal: &mut KruskalTensor, grams: &mut [Mat], time_mode: usize) {
    kruskal.factors[time_mode].shift_rows_up();
    grams[time_mode] = sns_linalg::ops::gram(&kruskal.factors[time_mode]);
}

/// Solves the newest time-factor row by least squares against the
/// categorical factors from the completed slice, writes it in place and
/// refreshes the time Gram. Every baseline performs this step right after
/// the slide — a zeroed newest row would otherwise zero the MTTKRP of the
/// newest unit and can collapse ALS-style refreshes entirely.
pub fn solve_new_time_row(kruskal: &mut KruskalTensor, grams: &mut [Mat], update: &PeriodUpdate) {
    let tm = kruskal.order() - 1;
    let rank = kruskal.rank();
    let newest = (kruskal.factors[tm].rows() - 1) as u32;
    let entries: Vec<(sns_tensor::Coord, f64)> =
        update.slice.iter().map(|&(c, v)| (c.extended(newest), v)).collect();
    let mut u = vec![0.0; rank];
    let mut prod = vec![0.0; rank];
    sns_core::mttkrp::mttkrp_row_from_entries(&entries, &kruskal.factors, tm, &mut u, &mut prod)
        .expect("rank-sized buffers");
    let h = sns_core::grams::hadamard_except(grams, tm, rank);
    let mut s = vec![0.0; rank];
    sns_linalg::lstsq::solve_row_sym(&h, &u, &mut s);
    kruskal.factors[tm].set_row(newest as usize, &s);
    grams[tm] = sns_linalg::ops::gram(&kruskal.factors[tm]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slide_shifts_and_refreshes_gram() {
        let mut k = KruskalTensor::zeros(&[2, 3], 2);
        k.factors[1].set_row(0, &[1.0, 1.0]);
        k.factors[1].set_row(1, &[2.0, 0.0]);
        k.factors[1].set_row(2, &[0.0, 3.0]);
        let mut grams = sns_core::grams::compute_grams(&k.factors);
        slide_time_factor(&mut k, &mut grams, 1);
        assert_eq!(k.factors[1].row(0), &[2.0, 0.0]);
        assert_eq!(k.factors[1].row(1), &[0.0, 3.0]);
        assert_eq!(k.factors[1].row(2), &[0.0, 0.0]);
        let fresh = sns_linalg::ops::gram(&k.factors[1]);
        assert_eq!(grams[1], fresh);
    }
}
