//! Captured baseline state: the carried-forward factor/accumulator
//! state of every conventional algorithm, as plain serializable data.
//!
//! Streaming-factorization systems treat the state carried between
//! windows — factors, historical accumulators, SGD bookkeeping — as the
//! first-class artifact: losing it means re-prefilling `W·T` periods and
//! desynchronizing every stochastic component. [`BaselineAlgoState`]
//! makes that state capturable for all four baselines, and
//! [`BaselineEngineState`] pairs it with the discrete window so a whole
//! [`BaselineEngine`] can be frozen and resumed
//! **bitwise-identically** — the same guarantee the continuous engine
//! has had since the session runtime landed.

use crate::{AlsPeriodic, BaselineEngine, CpStream, NeCpd, OnlineScp, PeriodicCpd};
use sns_core::kruskal::KruskalTensor;
use sns_linalg::Mat;
use sns_stream::DiscreteWindowState;

/// Captured algorithm-internal state of one conventional baseline.
///
/// Dead state is deliberately omitted: NeCPD's momentum buffers are
/// zeroed at the start of every period before use, so they restore as
/// zeros.
#[derive(Clone)]
pub enum BaselineAlgoState {
    /// Periodic warm-started batch ALS.
    AlsPeriodic {
        /// The factorization.
        kruskal: KruskalTensor,
        /// Maintained Gram matrices.
        grams: Vec<Mat>,
        /// ALS sweeps per period.
        sweeps: usize,
    },
    /// Windowed OnlineSCP.
    OnlineScp {
        /// The factorization.
        kruskal: KruskalTensor,
        /// Maintained Gram matrices.
        grams: Vec<Mat>,
    },
    /// Windowed CP-stream.
    CpStream {
        /// The factorization.
        kruskal: KruskalTensor,
        /// Maintained Gram matrices.
        grams: Vec<Mat>,
        /// Historical MTTKRP accumulators `P(m)`, categorical modes only.
        p_hist: Vec<Mat>,
        /// Historical Gram accumulators `G(m)`, categorical modes only.
        g_hist: Vec<Mat>,
        /// Forgetting factor `µ`.
        mu: f64,
        /// Inner alternations per period.
        inner_iters: usize,
    },
    /// Windowed NeCPD.
    NeCpd {
        /// The factorization.
        kruskal: KruskalTensor,
        /// Maintained Gram matrices.
        grams: Vec<Mat>,
        /// SGD epochs per period.
        epochs: usize,
        /// Periods seen (drives the learning-rate decay).
        periods_seen: u64,
        /// Shuffle RNG state, mid-stream.
        rng: [u64; 4],
    },
}

impl BaselineAlgoState {
    /// Display name of the captured algorithm.
    pub fn name(&self) -> String {
        match self {
            BaselineAlgoState::AlsPeriodic { sweeps, .. } => format!("ALS({sweeps})"),
            BaselineAlgoState::OnlineScp { .. } => "OnlineSCP".to_string(),
            BaselineAlgoState::CpStream { .. } => "CP-stream".to_string(),
            BaselineAlgoState::NeCpd { epochs, .. } => format!("NeCPD({epochs})"),
        }
    }

    /// The captured factorization.
    pub fn kruskal(&self) -> &KruskalTensor {
        match self {
            BaselineAlgoState::AlsPeriodic { kruskal, .. }
            | BaselineAlgoState::OnlineScp { kruskal, .. }
            | BaselineAlgoState::CpStream { kruskal, .. }
            | BaselineAlgoState::NeCpd { kruskal, .. } => kruskal,
        }
    }

    /// Rebuilds a live boxed baseline from the captured state; it
    /// continues bitwise-identically to the captured one.
    ///
    /// # Errors
    /// Returns a description of the first shape inconsistency (decoded
    /// snapshots are validated, not trusted).
    pub fn into_algo(self) -> Result<Box<dyn PeriodicCpd>, String> {
        // Baselines legitimately carry scale in λ mid-stream (periodic
        // ALS normalizes columns), so weights are not constrained here.
        self.kruskal().check_gram_shapes(self.grams(), false)?;
        Ok(match self {
            BaselineAlgoState::AlsPeriodic { kruskal, grams, sweeps } => {
                Box::new(AlsPeriodic::from_state(kruskal, grams, sweeps))
            }
            BaselineAlgoState::OnlineScp { kruskal, grams } => {
                Box::new(OnlineScp::from_state(kruskal, grams))
            }
            BaselineAlgoState::CpStream { kruskal, grams, p_hist, g_hist, mu, inner_iters } => {
                Box::new(CpStream::from_state(kruskal, grams, p_hist, g_hist, mu, inner_iters)?)
            }
            BaselineAlgoState::NeCpd { kruskal, grams, epochs, periods_seen, rng } => {
                Box::new(NeCpd::from_state(kruskal, grams, epochs, periods_seen, rng))
            }
        })
    }

    fn grams(&self) -> &[Mat] {
        match self {
            BaselineAlgoState::AlsPeriodic { grams, .. }
            | BaselineAlgoState::OnlineScp { grams, .. }
            | BaselineAlgoState::CpStream { grams, .. }
            | BaselineAlgoState::NeCpd { grams, .. } => grams,
        }
    }
}

impl std::fmt::Debug for BaselineAlgoState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BaselineAlgoState({}, dims={:?}, rank={})",
            self.name(),
            self.kruskal().dims(),
            self.kruskal().rank()
        )
    }
}

/// Captured state of a whole [`BaselineEngine`]: discrete window,
/// algorithm internals, and the period counter.
#[derive(Clone)]
pub struct BaselineEngineState {
    /// The discrete window (tensor, pending unit, boundary bookkeeping).
    pub window: DiscreteWindowState,
    /// The wrapped algorithm's carried-forward state.
    pub algo: BaselineAlgoState,
    /// Periods processed so far.
    pub periods: u64,
}

impl BaselineEngineState {
    /// Rebuilds a live engine; it continues bitwise-identically.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency.
    pub fn into_engine(self) -> Result<BaselineEngine<Box<dyn PeriodicCpd>>, String> {
        let BaselineEngineState { window, algo, periods } = self;
        let window = sns_stream::DiscreteWindow::from_state(window)?;
        if algo.kruskal().dims() != window.tensor().shape().dims() {
            return Err(format!(
                "factor dims {:?} do not match window dims {:?}",
                algo.kruskal().dims(),
                window.tensor().shape().dims()
            ));
        }
        Ok(BaselineEngine::from_parts(window, algo.into_algo()?, periods))
    }
}

impl std::fmt::Debug for BaselineEngineState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BaselineEngineState({}, dims={:?}, periods={})",
            self.algo.name(),
            self.algo.kruskal().dims(),
            self.periods
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_stream::StreamTuple;

    fn algos() -> Vec<Box<dyn PeriodicCpd>> {
        vec![
            Box::new(AlsPeriodic::new(&[5, 4, 3], 2, 2, 7)),
            Box::new(OnlineScp::new(&[5, 4, 3], 2, 8)),
            Box::new(CpStream::new(&[5, 4, 3], 2, 0.98, 2, 9)),
            Box::new(NeCpd::new(&[5, 4, 3], 2, 2, 10)),
        ]
    }

    fn tuples(n: u64) -> impl Iterator<Item = StreamTuple> {
        (0..n).map(|t| StreamTuple::new([(t % 5) as u32, ((t * 3) % 4) as u32], 1.0, t))
    }

    #[test]
    fn every_baseline_restores_bitwise_mid_stream() {
        for algo in algos() {
            let name = algo.name();
            let mut original = BaselineEngine::new(&[5, 4], 3, 10, algo);
            for tu in tuples(150) {
                original.ingest(tu).unwrap();
            }
            // Capture mid-stream — including a half-full pending unit.
            let state = original.capture_state().unwrap();
            let mut restored = state.into_engine().unwrap();
            for tu in tuples(150) {
                let tu = StreamTuple { time: tu.time + 150, ..tu };
                original.ingest(tu).unwrap();
                restored.ingest(tu).unwrap();
            }
            original.flush_to(400);
            restored.flush_to(400);
            assert_eq!(original.periods(), restored.periods(), "{name}");
            assert_eq!(original.fitness().to_bits(), restored.fitness().to_bits(), "{name}");
            for m in 0..3 {
                assert_eq!(
                    original.algo().kruskal().factors[m],
                    restored.algo().kruskal().factors[m],
                    "{name} mode {m}"
                );
            }
        }
    }

    #[test]
    fn into_engine_rejects_mismatched_dims() {
        let algo: Box<dyn PeriodicCpd> = Box::new(OnlineScp::new(&[5, 4, 3], 2, 8));
        let engine = BaselineEngine::new(&[5, 4], 3, 10, algo);
        let mut state = engine.capture_state().unwrap();
        // Swap in factors of the wrong shape.
        state.algo = BaselineAlgoState::OnlineScp {
            kruskal: OnlineScp::new(&[2, 2, 3], 2, 1).kruskal().clone(),
            grams: OnlineScp::new(&[2, 2, 3], 2, 1).grams().to_vec(),
        };
        assert!(state.into_engine().is_err());
    }

    #[test]
    fn debug_is_compact() {
        let algo: Box<dyn PeriodicCpd> = Box::new(CpStream::new(&[5, 4, 3], 2, 0.98, 2, 9));
        let engine = BaselineEngine::new(&[5, 4], 3, 10, algo);
        let dbg = format!("{:?}", engine.capture_state().unwrap());
        assert!(dbg.contains("CP-stream") && dbg.len() < 120, "{dbg}");
    }
}
