//! NeCPD(n) (Anaissi, Suleiman, Zandavi — arXiv 2020), windowed.
//!
//! NeCPD performs online CPD by stochastic gradient descent with
//! Nesterov's accelerated gradient: per period it makes `n` passes
//! (epochs) over the new slice's non-zeros, updating the factor rows that
//! each non-zero touches. The paper compares NeCPD(1) and NeCPD(10).
//!
//! Windowed adaptation: the time factor slides with the window; the new
//! time row starts from a least-squares fit of the slice (a cold random
//! row would need many epochs), after which SGD refines all touched rows.
//! Per-period cost: `O(n · |slice| · M · R)`.

use crate::periodic::{slide_time_factor, PeriodicCpd};
use sns_core::grams::{compute_grams, hadamard_except};
use sns_core::kruskal::KruskalTensor;
use sns_core::mttkrp::{khatri_rao_row, mttkrp_row_from_entries};
use sns_linalg::ops::gram;
use sns_linalg::Mat;
use sns_stream::PeriodUpdate;
use sns_tensor::{Coord, SparseTensor};

/// Windowed NeCPD with `epochs` SGD passes per period.
pub struct NeCpd {
    kruskal: KruskalTensor,
    grams: Vec<Mat>,
    epochs: usize,
    /// Base learning rate (decays as 1/√period).
    lr: f64,
    /// Nesterov momentum coefficient.
    momentum: f64,
    /// Momentum buffers, one per mode, same shape as the factors.
    velocity: Vec<Mat>,
    periods_seen: u64,
    rng: rand::rngs::StdRng,
}

impl NeCpd {
    /// Creates the baseline; `dims` includes the time mode last.
    /// The paper's variants are `epochs = 1` and `epochs = 10`.
    pub fn new(dims: &[usize], rank: usize, epochs: usize, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let kruskal = KruskalTensor::random(&mut rng, dims, rank, 1.0);
        let grams = compute_grams(&kruskal.factors);
        let velocity = dims.iter().map(|&n| Mat::zeros(n, rank)).collect();
        NeCpd {
            kruskal,
            grams,
            epochs: epochs.max(1),
            lr: 0.002,
            momentum: 0.5,
            velocity,
            periods_seen: 0,
            rng,
        }
    }

    /// Number of SGD epochs per period.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Rebuilds the baseline from captured state (bitwise continuation).
    /// Momentum buffers restore as zeros: `on_period` clears them before
    /// every use, so their between-period content is dead state.
    pub(crate) fn from_state(
        kruskal: KruskalTensor,
        grams: Vec<Mat>,
        epochs: usize,
        periods_seen: u64,
        rng: [u64; 4],
    ) -> Self {
        use rand::rngs::StdRng;
        let rank = kruskal.rank();
        let velocity = kruskal.dims().iter().map(|&n| Mat::zeros(n, rank)).collect();
        NeCpd {
            kruskal,
            grams,
            epochs: epochs.max(1),
            lr: 0.002,
            momentum: 0.5,
            velocity,
            periods_seen,
            rng: StdRng::from_state(rng),
        }
    }

    /// One Nesterov-SGD step on a single observed entry.
    fn sgd_step(&mut self, coord: &Coord, value: f64, lr: f64) {
        let rank = self.kruskal.rank();
        let order = self.kruskal.order();
        // Residual at the look-ahead point ≈ current (standard NAG
        // simplification for row-sparse updates).
        let pred = self.kruskal.eval(coord);
        let resid = value - pred;
        let mut prod = vec![0.0; rank];
        for m in 0..order {
            // ∂/∂A(m)(i_m,:) of ½(x − x̂)² = −resid · Π_{n≠m} A(n)(i_n,:)
            khatri_rao_row(&self.kruskal.factors, coord, m, &mut prod);
            let i = coord.get(m) as usize;
            for (k, &pk) in prod.iter().enumerate().take(rank) {
                let g = -resid * pk;
                // Clamp the step: per-entry SGD on count data is prone to
                // oscillation, and NeCPD's own evaluation in the paper
                // shows it is the weakest-but-stable baseline.
                let v = (self.momentum * self.velocity[m][(i, k)] - lr * g).clamp(-0.5, 0.5);
                self.velocity[m][(i, k)] = v;
                self.kruskal.factors[m][(i, k)] += v;
            }
        }
    }
}

impl PeriodicCpd for NeCpd {
    fn on_period(&mut self, _window: &SparseTensor, update: &PeriodUpdate) {
        use rand::seq::SliceRandom;
        let tm = self.kruskal.order() - 1;
        let rank = self.kruskal.rank();
        let newest = self.kruskal.factors[tm].rows() - 1;
        slide_time_factor(&mut self.kruskal, &mut self.grams, tm);
        self.velocity[tm].shift_rows_up();
        self.periods_seen += 1;

        // Fresh momentum each period: carrying velocity across period
        // boundaries lets epochs compound into oscillation.
        for v in &mut self.velocity {
            v.fill_zero();
        }
        let mut entries: Vec<(Coord, f64)> =
            update.slice.iter().map(|&(c, v)| (c.extended(newest as u32), v)).collect();
        if entries.is_empty() {
            // Nothing arrived this period; the new time row stays zero.
            return;
        }
        // Warm init of the new time row by least squares.
        let mut u = vec![0.0; rank];
        let mut prod = vec![0.0; rank];
        mttkrp_row_from_entries(&entries, &self.kruskal.factors, tm, &mut u, &mut prod)
            .expect("rank-sized buffers");
        let h = hadamard_except(&self.grams, tm, rank);
        let mut s = vec![0.0; rank];
        sns_linalg::lstsq::solve_row_sym(&h, &u, &mut s);
        self.kruskal.factors[tm].set_row(newest, &s);

        // SGD epochs over the slice, shuffled each pass.
        let lr = self.lr / (1.0 + (self.periods_seen as f64).sqrt());
        for _ in 0..self.epochs {
            entries.shuffle(&mut self.rng);
            let pass: Vec<(Coord, f64)> = entries.clone();
            for (c, v) in pass {
                self.sgd_step(&c, v, lr);
            }
        }
        // Refresh all Grams once per period (SGD touched many rows).
        for m in 0..self.kruskal.order() {
            self.grams[m] = gram(&self.kruskal.factors[m]);
        }
    }

    fn kruskal(&self) -> &KruskalTensor {
        &self.kruskal
    }

    fn grams(&self) -> &[Mat] {
        &self.grams
    }

    fn name(&self) -> String {
        format!("NeCPD({})", self.epochs)
    }

    fn install(&mut self, mut kruskal: KruskalTensor, grams: Vec<Mat>) {
        // NeCPD's gradients assume unit weights: fold λ into the factors.
        if kruskal.lambda.iter().any(|&l| l != 1.0) {
            kruskal.distribute_lambda();
            self.grams = compute_grams(&kruskal.factors);
        } else {
            self.grams = grams;
        }
        self.kruskal = kruskal;
        for v in &mut self.velocity {
            v.fill_zero();
        }
    }

    fn capture(&self) -> Result<crate::state::BaselineAlgoState, sns_stream::SnsError> {
        Ok(crate::state::BaselineAlgoState::NeCpd {
            kruskal: self.kruskal.clone(),
            grams: self.grams.clone(),
            epochs: self.epochs,
            periods_seen: self.periods_seen,
            rng: self.rng.state(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_stream::{DiscreteWindow, StreamTuple};

    fn drive(epochs: usize) -> (DiscreteWindow, NeCpd) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(35);
        let mut w = DiscreteWindow::new(&[6, 5], 4, 10);
        let mut alg = NeCpd::new(&[6, 5, 4], 3, epochs, 36);
        let mut updates = Vec::new();
        let gen = |rng: &mut rand::rngs::StdRng| {
            if rng.gen_bool(0.7) {
                (rng.gen_range(0..3u32), rng.gen_range(0..2u32))
            } else {
                (rng.gen_range(3..6u32), rng.gen_range(2..5u32))
            }
        };
        // Prefill + ALS warm start, as the paper's protocol prescribes
        // (SGD-style baselines cannot escape a random initialization by
        // touching only slice rows).
        for t in 0..300u64 {
            let (a, b) = gen(&mut rng);
            updates.clear();
            w.ingest(StreamTuple::new([a, b], 1.0, t), &mut updates).unwrap();
        }
        let warm = sns_core::als::als(
            w.tensor(),
            3,
            &sns_core::als::AlsOptions { max_iters: 25, ..Default::default() },
        );
        alg.install(warm.kruskal, warm.grams);
        for t in 300..600u64 {
            let (a, b) = gen(&mut rng);
            updates.clear();
            w.ingest(StreamTuple::new([a, b], 1.0, t), &mut updates).unwrap();
            for u in &updates {
                alg.on_period(w.tensor(), u);
            }
        }
        (w, alg)
    }

    #[test]
    fn remains_finite_and_reaches_positive_fitness() {
        let (w, alg) = drive(10);
        assert!(alg.kruskal().is_finite());
        let fit = alg.fitness(w.tensor());
        assert!(fit > 0.0, "NeCPD(10) fitness {fit}");
        assert_eq!(alg.name(), "NeCPD(10)");
    }

    #[test]
    fn more_epochs_do_not_hurt_much() {
        // NeCPD(10) should fit at least as well as NeCPD(1) up to noise
        // (Fig. 4 shows NeCPD(10) above NeCPD(1) everywhere).
        let (w1, a1) = drive(1);
        let (w10, a10) = drive(10);
        let f1 = a1.fitness(w1.tensor());
        let f10 = a10.fitness(w10.tensor());
        assert!(f10 > f1 - 0.1, "NeCPD(10)={f10} much worse than NeCPD(1)={f1}");
    }

    #[test]
    fn empty_period_is_harmless() {
        let mut alg = NeCpd::new(&[4, 4, 3], 2, 1, 5);
        let mut w = DiscreteWindow::new(&[4, 4], 3, 10);
        let mut updates = Vec::new();
        w.ingest(StreamTuple::new([0u32, 0], 1.0, 5), &mut updates).unwrap();
        // Jump far ahead: several empty periods complete.
        w.ingest(StreamTuple::new([1u32, 1], 1.0, 55), &mut updates).unwrap();
        for u in &updates {
            alg.on_period(w.tensor(), u);
        }
        assert!(alg.kruskal().is_finite());
    }
}
