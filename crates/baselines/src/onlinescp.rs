//! OnlineSCP (Zhou, Erfani, Bailey — ICDM 2018), windowed adaptation.
//!
//! OnlineSCP incrementally maintains a CPD of a *growing* sparse tensor:
//! when a new time slice arrives it (1) solves the new time-factor row by
//! least squares against the fixed categorical factors, then (2) refreshes
//! each categorical factor with a single least-squares solve that reuses
//! the historical auxiliary products instead of iterating to convergence.
//!
//! Windowed adaptation (the paper's "modified … to decompose the tensor
//! window"): the time factor slides with the window, the new row is
//! solved from the new slice, and the single categorical refresh runs its
//! MTTKRP over the window's non-zeros (history = the window, since
//! evicted slices must stop contributing). Per-period cost is therefore
//! `O(|window| · M · R + M R³)` — one window sweep, no inner iterations —
//! which matches OnlineSCP's position in Fig. 5a (accurate but the
//! slowest online baseline).

use crate::periodic::{slide_time_factor, solve_new_time_row, PeriodicCpd};
use sns_core::grams::{compute_grams, hadamard_except};
use sns_core::kruskal::KruskalTensor;
use sns_core::mttkrp::mttkrp_full;
use sns_linalg::ops::gram;
use sns_linalg::Mat;
use sns_stream::PeriodUpdate;
use sns_tensor::SparseTensor;

/// Windowed OnlineSCP.
pub struct OnlineScp {
    kruskal: KruskalTensor,
    grams: Vec<Mat>,
}

impl OnlineScp {
    /// Creates the baseline with random factors; `dims` includes the time
    /// mode (length `W`) last.
    pub fn new(dims: &[usize], rank: usize, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let kruskal = KruskalTensor::random(&mut rng, dims, rank, 1.0);
        let grams = compute_grams(&kruskal.factors);
        OnlineScp { kruskal, grams }
    }

    /// Rebuilds the baseline from captured state (bitwise continuation).
    pub(crate) fn from_state(kruskal: KruskalTensor, grams: Vec<Mat>) -> Self {
        OnlineScp { kruskal, grams }
    }
}

impl PeriodicCpd for OnlineScp {
    fn on_period(&mut self, window: &SparseTensor, update: &PeriodUpdate) {
        let tm = self.kruskal.order() - 1;
        let rank = self.kruskal.rank();
        // 1. Slide the time factor with the window.
        slide_time_factor(&mut self.kruskal, &mut self.grams, tm);
        // 2. New time row from the new slice (historical rows fixed —
        //    OnlineSCP never revisits committed time rows).
        solve_new_time_row(&mut self.kruskal, &mut self.grams, update);
        // 3. Single refresh of each categorical factor over the window.
        for m in 0..tm {
            let u = mttkrp_full(window, &self.kruskal.factors, m);
            let h = hadamard_except(&self.grams, m, rank);
            self.kruskal.factors[m] =
                sns_linalg::lstsq::solve_xh_eq_u(&h, &u).expect("finite Gram system");
            self.grams[m] = gram(&self.kruskal.factors[m]);
        }
    }

    fn kruskal(&self) -> &KruskalTensor {
        &self.kruskal
    }

    fn grams(&self) -> &[Mat] {
        &self.grams
    }

    fn name(&self) -> String {
        "OnlineSCP".to_string()
    }

    fn install(&mut self, mut kruskal: KruskalTensor, grams: Vec<Mat>) {
        // The incremental solves assume unit weights: fold λ in.
        if kruskal.lambda.iter().any(|&l| l != 1.0) {
            kruskal.distribute_lambda();
            self.grams = compute_grams(&kruskal.factors);
        } else {
            self.grams = grams;
        }
        self.kruskal = kruskal;
    }

    fn capture(&self) -> Result<crate::state::BaselineAlgoState, sns_stream::SnsError> {
        Ok(crate::state::BaselineAlgoState::OnlineScp {
            kruskal: self.kruskal.clone(),
            grams: self.grams.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_stream::{DiscreteWindow, StreamTuple};

    #[test]
    fn tracks_discrete_window() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let mut w = DiscreteWindow::new(&[6, 5], 4, 10);
        let mut alg = OnlineScp::new(&[6, 5, 4], 3, 16);
        let mut updates = Vec::new();
        for t in 0..500u64 {
            // Two-community structure so there is signal to track.
            let (a, b) = if rng.gen_bool(0.6) {
                (rng.gen_range(0..3u32), rng.gen_range(0..2u32))
            } else {
                (rng.gen_range(3..6u32), rng.gen_range(2..5u32))
            };
            updates.clear();
            w.ingest(StreamTuple::new([a, b], 1.0, t), &mut updates).unwrap();
            for u in &updates {
                alg.on_period(w.tensor(), u);
            }
        }
        let fit = alg.fitness(w.tensor());
        assert!(fit > 0.2, "OnlineSCP fitness {fit}");
        assert!(alg.kruskal().is_finite());
    }

    #[test]
    fn new_time_row_fits_slice_mass() {
        // A slice with all mass at one categorical cell should produce a
        // time row whose reconstruction at that cell is positive.
        let mut alg = OnlineScp::new(&[4, 4, 3], 2, 17);
        let mut w = DiscreteWindow::new(&[4, 4], 3, 10);
        let mut updates = Vec::new();
        for t in [1u64, 3, 7] {
            w.ingest(StreamTuple::new([2u32, 2], 5.0, t), &mut updates).unwrap();
        }
        w.flush_to(10, &mut updates);
        assert_eq!(updates.len(), 1);
        alg.on_period(w.tensor(), &updates[0]);
        let rec = alg.kruskal().eval(&sns_tensor::Coord::new(&[2, 2, 2]));
        assert!(rec > 0.0, "reconstruction at slice mass is {rec}");
    }
}
