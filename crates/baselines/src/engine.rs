//! Driver pairing a discrete window with a periodic baseline.

use crate::periodic::PeriodicCpd;
use crate::state::BaselineEngineState;
use sns_core::als::{warm_start_from, AlsOptions, AlsResult};
use sns_stream::{DiscreteWindow, PeriodUpdate, SnsError, StreamTuple};
use sns_tensor::SparseTensor;

/// A conventional-model engine: tuples go into a [`DiscreteWindow`]; the
/// wrapped baseline is invoked once per completed period.
pub struct BaselineEngine<B: PeriodicCpd> {
    window: DiscreteWindow,
    algo: B,
    buf: Vec<PeriodUpdate>,
    periods: u64,
}

impl<B: PeriodicCpd> BaselineEngine<B> {
    /// Wraps `algo` over a fresh window.
    pub fn new(base_dims: &[usize], window: usize, period: u64, algo: B) -> Self {
        BaselineEngine {
            window: DiscreteWindow::new(base_dims, window, period),
            algo,
            buf: Vec::new(),
            periods: 0,
        }
    }

    /// Ingests a tuple; runs the baseline for each period that completed.
    /// Returns how many periods completed.
    pub fn ingest(&mut self, tuple: StreamTuple) -> sns_stream::Result<usize> {
        self.buf.clear();
        self.window.ingest(tuple, &mut self.buf)?;
        for u in &self.buf {
            self.algo.on_period(self.window.tensor(), u);
        }
        self.periods += self.buf.len() as u64;
        Ok(self.buf.len())
    }

    /// Flushes periods ending at or before `t`.
    pub fn flush_to(&mut self, t: u64) -> usize {
        self.buf.clear();
        self.window.flush_to(t, &mut self.buf);
        for u in &self.buf {
            self.algo.on_period(self.window.tensor(), u);
        }
        self.periods += self.buf.len() as u64;
        self.buf.len()
    }

    /// Ingests a tuple into the window **without** running the baseline
    /// (prefill phase before ALS warm start).
    pub fn prefill(&mut self, tuple: StreamTuple) -> sns_stream::Result<()> {
        self.buf.clear();
        self.window.ingest(tuple, &mut self.buf)
    }

    /// Runs batch ALS on the current window and installs the result
    /// (the shared warm start of `sns_core::als::warm_start_from`; when
    /// the wrapped baseline's initial factors were drawn with
    /// `opts.seed`, this matches a fresh `als()` on the window bitwise).
    pub fn warm_start(&mut self, opts: &AlsOptions) -> AlsResult {
        let result = warm_start_from(self.window.tensor(), self.algo.kruskal(), opts);
        self.algo.install(result.kruskal.clone(), result.grams.clone());
        result
    }

    /// Current window tensor (completed units only).
    pub fn window(&self) -> &SparseTensor {
        self.window.tensor()
    }

    /// Accumulated value of the in-flight period at a categorical
    /// coordinate (see [`DiscreteWindow::pending_value`]).
    pub fn pending_value(&self, coords: &sns_tensor::Coord) -> f64 {
        self.window.pending_value(coords)
    }

    /// The wrapped baseline.
    pub fn algo(&self) -> &B {
        &self.algo
    }

    /// Fitness of the baseline on the current window.
    pub fn fitness(&self) -> f64 {
        self.algo.fitness(self.window.tensor())
    }

    /// Number of periods processed.
    pub fn periods(&self) -> u64 {
        self.periods
    }

    /// Captures the engine's complete live state — window (with exact
    /// iteration orders), pending accumulation, algorithm internals —
    /// as plain serializable data. A
    /// [`BaselineEngineState::into_engine`] rebuild continues
    /// bitwise-identically.
    ///
    /// # Errors
    /// [`SnsError::SnapshotUnsupported`] if the wrapped algorithm has no
    /// capture path (external [`PeriodicCpd`] impls that keep the
    /// default opt-out).
    pub fn capture_state(&self) -> Result<BaselineEngineState, SnsError> {
        Ok(BaselineEngineState {
            window: self.window.capture_state(),
            algo: self.algo.capture()?,
            periods: self.periods,
        })
    }
}

impl BaselineEngine<Box<dyn PeriodicCpd>> {
    /// Reassembles an engine from restored parts (state restore — see
    /// [`BaselineEngineState::into_engine`]).
    pub(crate) fn from_parts(
        window: DiscreteWindow,
        algo: Box<dyn PeriodicCpd>,
        periods: u64,
    ) -> Self {
        BaselineEngine { window, algo, buf: Vec::new(), periods }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als_periodic::AlsPeriodic;

    #[test]
    fn engine_drives_baseline_per_period() {
        let alg = AlsPeriodic::new(&[4, 4, 3], 2, 4, 1);
        let mut e = BaselineEngine::new(&[4, 4], 3, 10, alg);
        let mut n = 0;
        for t in 0..100u64 {
            n +=
                e.ingest(StreamTuple::new([(t % 4) as u32, ((t / 4) % 4) as u32], 1.0, t)).unwrap();
        }
        n += e.flush_to(100);
        assert_eq!(n as u64, e.periods());
        assert_eq!(e.periods(), 10);
        assert!(e.fitness().is_finite());
    }

    #[test]
    fn warm_start_installs() {
        let alg = AlsPeriodic::new(&[4, 4, 3], 2, 1, 2);
        let mut e = BaselineEngine::new(&[4, 4], 3, 10, alg);
        for t in 0..60u64 {
            e.prefill(StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).unwrap();
        }
        let r = e.warm_start(&AlsOptions { max_iters: 20, ..Default::default() });
        assert!((e.fitness() - r.fitness).abs() < 1e-9);
    }
}
