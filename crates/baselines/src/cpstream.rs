//! CP-stream (Smith, Huang, Sidiropoulos, Karypis — SDM 2018), windowed.
//!
//! CP-stream maintains factor matrices under a *forgetting factor* µ: at
//! each time step it alternates a few inner iterations between (1) the new
//! time vector `s_t` solved against the categorical factors and (2) each
//! categorical factor solved against µ-weighted historical accumulators
//! plus the new slice:
//!
//! ```text
//! A(m) ← (µ·P(m) + MTTKRP_m(Y_t, s_t)) · (µ·G(m) + H_t(m))†
//! P(m) ← µ·P(m) + MTTKRP_m(Y_t, s_t)
//! G(m) ← µ·G(m) + H_t(m)
//! ```
//!
//! where `H_t(m) = (∗_{n≠m, cat} A(n)ᵀA(n)) ∗ (s_tᵀ s_t)`. Only the new
//! slice is ever touched, so the per-period cost is
//! `O(inner · |slice| · M · R + M R³)` — cheaper than OnlineSCP's window
//! sweep, matching their ordering in Fig. 5a.
//!
//! Windowed adaptation: the time factor keeps the `W` most recent `s_t`
//! rows (sliding with the window) so fitness is measured on the same
//! window tensor as every other method.

use crate::periodic::{slide_time_factor, PeriodicCpd};
use sns_core::grams::compute_grams;
use sns_core::kruskal::KruskalTensor;
use sns_core::mttkrp::mttkrp_row_from_entries;
use sns_linalg::ops::{gram, hadamard, hadamard_assign, matmul};
use sns_linalg::Mat;
use sns_stream::PeriodUpdate;
use sns_tensor::{Coord, SparseTensor};

/// Windowed CP-stream with forgetting factor µ.
pub struct CpStream {
    kruskal: KruskalTensor,
    grams: Vec<Mat>,
    /// Historical MTTKRP accumulators, categorical modes only.
    p_hist: Vec<Mat>,
    /// Historical Gram accumulators, categorical modes only.
    g_hist: Vec<Mat>,
    /// Forgetting factor µ ∈ (0, 1].
    mu: f64,
    /// Inner alternations per period.
    inner_iters: usize,
}

impl CpStream {
    /// Creates the baseline; `dims` includes the time mode (length `W`)
    /// last. Paper-era defaults: `mu = 0.99`, `inner_iters = 3`.
    pub fn new(dims: &[usize], rank: usize, mu: f64, inner_iters: usize, seed: u64) -> Self {
        use rand::SeedableRng;
        assert!((0.0..=1.0).contains(&mu) && mu > 0.0, "µ must be in (0, 1]");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let kruskal = KruskalTensor::random(&mut rng, dims, rank, 1.0);
        let grams = compute_grams(&kruskal.factors);
        let cat_modes = dims.len() - 1;
        let p_hist = (0..cat_modes).map(|m| Mat::zeros(dims[m], rank)).collect();
        let g_hist = (0..cat_modes).map(|_| Mat::zeros(rank, rank)).collect();
        CpStream { kruskal, grams, p_hist, g_hist, mu, inner_iters }
    }

    /// Forgetting factor µ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Rebuilds the baseline from captured state (bitwise continuation).
    pub(crate) fn from_state(
        kruskal: KruskalTensor,
        grams: Vec<Mat>,
        p_hist: Vec<Mat>,
        g_hist: Vec<Mat>,
        mu: f64,
        inner_iters: usize,
    ) -> Result<Self, String> {
        let cat_modes = kruskal.order() - 1;
        let rank = kruskal.rank();
        if !((0.0..=1.0).contains(&mu) && mu > 0.0) {
            return Err(format!("forgetting factor µ={mu} outside (0, 1]"));
        }
        if p_hist.len() != cat_modes || g_hist.len() != cat_modes {
            return Err(format!(
                "{}/{} accumulators for {cat_modes} categorical modes",
                p_hist.len(),
                g_hist.len()
            ));
        }
        for m in 0..cat_modes {
            if p_hist[m].shape() != (kruskal.factors[m].rows(), rank)
                || g_hist[m].shape() != (rank, rank)
            {
                return Err(format!("mode {m} accumulator shape mismatch"));
            }
        }
        Ok(CpStream { kruskal, grams, p_hist, g_hist, mu, inner_iters })
    }

    /// `s_t` least squares against the categorical factors.
    fn solve_time_row(&self, entries: &[(Coord, f64)], out: &mut [f64]) {
        let tm = self.kruskal.order() - 1;
        let rank = self.kruskal.rank();
        let mut u = vec![0.0; rank];
        let mut prod = vec![0.0; rank];
        mttkrp_row_from_entries(entries, &self.kruskal.factors, tm, &mut u, &mut prod)
            .expect("rank-sized buffers");
        // H = ∗_cat A(n)ᵀA(n) (exclude the time factor entirely).
        let mut h = Mat::filled(rank, rank, 1.0);
        for m in 0..tm {
            hadamard_assign(&mut h, &self.grams[m]).expect("rank shapes agree");
        }
        sns_linalg::lstsq::solve_row_sym(&h, &u, out);
    }
}

impl PeriodicCpd for CpStream {
    fn on_period(&mut self, _window: &SparseTensor, update: &PeriodUpdate) {
        let tm = self.kruskal.order() - 1;
        let rank = self.kruskal.rank();
        let newest = self.kruskal.factors[tm].rows() - 1;
        slide_time_factor(&mut self.kruskal, &mut self.grams, tm);

        // Slice entries with the newest time index attached.
        let entries: Vec<(Coord, f64)> =
            update.slice.iter().map(|&(c, v)| (c.extended(newest as u32), v)).collect();

        let mut s = vec![0.0; rank];
        for _ in 0..self.inner_iters.max(1) {
            // (1) new time vector against current categorical factors.
            self.solve_time_row(&entries, &mut s);
            self.kruskal.factors[tm].set_row(newest, &s);
            self.grams[tm] = gram(&self.kruskal.factors[tm]);
            // (2) categorical factors against µ-weighted history + slice.
            let s_outer = {
                let mut m = Mat::zeros(rank, rank);
                for i in 0..rank {
                    for j in 0..rank {
                        m[(i, j)] = s[i] * s[j];
                    }
                }
                m
            };
            for m in 0..tm {
                // MTTKRP of the slice for mode m (includes the s_t row).
                let mut u = Mat::zeros(self.kruskal.factors[m].rows(), rank);
                let mut prod = vec![0.0; rank];
                for (c, v) in &entries {
                    sns_core::mttkrp::khatri_rao_row(&self.kruskal.factors, c, m, &mut prod);
                    let row = u.row_mut(c.get(m) as usize);
                    for k in 0..rank {
                        row[k] += v * prod[k];
                    }
                }
                // H_t(m) = (∗_{n≠m, cat} Gram) ∗ s sᵀ
                let mut h_t = s_outer.clone();
                for n in 0..tm {
                    if n != m {
                        hadamard_assign(&mut h_t, &self.grams[n]).expect("rank shapes");
                    }
                }
                // Solve against µ-weighted accumulators + current slice.
                let mut p = self.p_hist[m].clone();
                p.scale_in_place(self.mu);
                for (pp, uu) in p.as_mut_slice().iter_mut().zip(u.as_slice()) {
                    *pp += uu;
                }
                let mut g = self.g_hist[m].clone();
                g.scale_in_place(self.mu);
                for (gg, hh) in g.as_mut_slice().iter_mut().zip(h_t.as_slice()) {
                    *gg += hh;
                }
                self.kruskal.factors[m] =
                    sns_linalg::lstsq::solve_xh_eq_u(&g, &p).expect("finite accumulators");
                self.grams[m] = gram(&self.kruskal.factors[m]);
            }
        }
        // Commit the accumulators once per period.
        let s_outer =
            hadamard(&Mat::from_fn(rank, rank, |i, j| s[i] * s[j]), &Mat::filled(rank, rank, 1.0))
                .expect("shape");
        for m in 0..tm {
            let mut u = Mat::zeros(self.kruskal.factors[m].rows(), rank);
            let mut prod = vec![0.0; rank];
            for (c, v) in &entries {
                sns_core::mttkrp::khatri_rao_row(&self.kruskal.factors, c, m, &mut prod);
                let row = u.row_mut(c.get(m) as usize);
                for k in 0..rank {
                    row[k] += v * prod[k];
                }
            }
            let mut h_t = s_outer.clone();
            for n in 0..tm {
                if n != m {
                    hadamard_assign(&mut h_t, &self.grams[n]).expect("rank shapes");
                }
            }
            self.p_hist[m].scale_in_place(self.mu);
            for (pp, uu) in self.p_hist[m].as_mut_slice().iter_mut().zip(u.as_slice()) {
                *pp += uu;
            }
            self.g_hist[m].scale_in_place(self.mu);
            for (gg, hh) in self.g_hist[m].as_mut_slice().iter_mut().zip(h_t.as_slice()) {
                *gg += hh;
            }
        }
    }

    fn kruskal(&self) -> &KruskalTensor {
        &self.kruskal
    }

    fn grams(&self) -> &[Mat] {
        &self.grams
    }

    fn name(&self) -> String {
        "CP-stream".to_string()
    }

    fn install(&mut self, mut kruskal: KruskalTensor, grams: Vec<Mat>) {
        // The accumulator recursions assume unit weights: fold λ in.
        let grams = if kruskal.lambda.iter().any(|&l| l != 1.0) {
            kruskal.distribute_lambda();
            compute_grams(&kruskal.factors)
        } else {
            grams
        };
        // Seed the historical accumulators from the installed window
        // factors so the first periods are not dominated by the random
        // init: P(m) = MTTKRP of the reconstruction ≈ A(m)·H(m),
        // G(m) = ∗_{n≠m} Gram(n) (time mode folded in).
        let tm = kruskal.order() - 1;
        let rank = kruskal.rank();
        for m in 0..tm {
            let mut h = Mat::filled(rank, rank, 1.0);
            for (n, g) in grams.iter().enumerate() {
                if n != m {
                    hadamard_assign(&mut h, g).expect("rank shapes");
                }
            }
            self.p_hist[m] = matmul(&kruskal.factors[m], &h).expect("shapes");
            self.g_hist[m] = h;
        }
        self.kruskal = kruskal;
        self.grams = grams;
    }

    fn capture(&self) -> Result<crate::state::BaselineAlgoState, sns_stream::SnsError> {
        Ok(crate::state::BaselineAlgoState::CpStream {
            kruskal: self.kruskal.clone(),
            grams: self.grams.clone(),
            p_hist: self.p_hist.clone(),
            g_hist: self.g_hist.clone(),
            mu: self.mu,
            inner_iters: self.inner_iters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_stream::{DiscreteWindow, StreamTuple};

    #[test]
    fn tracks_structured_stream() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(25);
        let mut w = DiscreteWindow::new(&[6, 5], 4, 10);
        let mut alg = CpStream::new(&[6, 5, 4], 3, 0.99, 3, 26);
        let mut updates = Vec::new();
        for t in 0..600u64 {
            let (a, b) = if rng.gen_bool(0.7) {
                (rng.gen_range(0..3u32), rng.gen_range(0..2u32))
            } else {
                (rng.gen_range(3..6u32), rng.gen_range(2..5u32))
            };
            updates.clear();
            w.ingest(StreamTuple::new([a, b], 1.0, t), &mut updates).unwrap();
            for u in &updates {
                alg.on_period(w.tensor(), u);
            }
        }
        let fit = alg.fitness(w.tensor());
        assert!(fit > 0.1, "CP-stream fitness {fit}");
        assert!(alg.kruskal().is_finite());
        assert_eq!(alg.name(), "CP-stream");
        assert!((alg.mu() - 0.99).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "µ must be")]
    fn rejects_bad_mu() {
        let _ = CpStream::new(&[3, 3, 2], 2, 0.0, 1, 1);
    }
}
