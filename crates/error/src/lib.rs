//! # sns-error
//!
//! The single error surface of the SliceNStitch workspace: every fallible
//! operation a client can reach — window-model validation, batched
//! ingestion, the pooled session runtime — reports one [`SnsError`], so
//! results stay typed end to end instead of degrading to strings at crate
//! boundaries.
//!
//! The enum has three families of variants:
//!
//! - **Stream-model errors** ([`SnsError::OutOfOrder`],
//!   [`SnsError::OrderMismatch`], [`SnsError::OutOfBounds`]) — a tuple
//!   violated the continuous tensor model's input contract
//!   (Definition 1 of the paper).
//! - **Batch errors** ([`SnsError::BatchAborted`]) — a batched
//!   `prefill_all`/`ingest_all` short-circuited mid-slice; the variant
//!   carries how far it got so callers can resume or account precisely.
//! - **Session/runtime errors** ([`SnsError::Backpressure`],
//!   [`SnsError::StreamClosed`], …) — flow control and lifecycle of the
//!   sharded `EnginePool` runtime.
//!
//! The crate is dependency-free so every workspace member (including
//! `sns-stream`, at the bottom of the graph) can use it.

#![deny(missing_docs)]

use std::fmt;

/// Unified error type for stream ingestion, batched updates, and the
/// pooled session runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnsError {
    /// Tuples must arrive in chronological order (Definition 1).
    OutOfOrder {
        /// Timestamp of the latest previously ingested tuple.
        previous: u64,
        /// Timestamp of the offending tuple.
        got: u64,
    },
    /// A tuple's categorical coordinate order does not match the window.
    OrderMismatch {
        /// Expected number of categorical modes (`M − 1`).
        expected: usize,
        /// Received number of categorical modes.
        got: usize,
    },
    /// A tuple's categorical coordinate is outside the declared shape.
    OutOfBounds {
        /// Offending mode.
        mode: usize,
        /// Offending index.
        index: u32,
        /// Length of that mode.
        len: usize,
    },
    /// A batched operation stopped at its first failing tuple. Tuples
    /// before the failing one **were** applied and stay applied; `source`
    /// is the per-tuple error that stopped the batch.
    BatchAborted {
        /// Tuples accepted before the failure (= index of the bad tuple).
        accepted: usize,
        /// Factor updates applied by the accepted tuples.
        applied: u64,
        /// The error the failing tuple produced.
        source: Box<SnsError>,
    },
    /// A non-blocking submit found the stream's bounded command queue
    /// full. Nothing was enqueued; retry later or use the blocking call.
    Backpressure {
        /// The stream whose shard queue is full.
        stream_id: u64,
        /// The shard whose queue is full.
        shard: usize,
        /// Commands in flight on that shard when the submit failed.
        depth: usize,
        /// Configured queue capacity (commands) of the shard.
        capacity: usize,
    },
    /// The stream's worker is gone or the stream was closed/replaced;
    /// the session can no longer be used.
    StreamClosed {
        /// The stream the session was bound to.
        stream_id: u64,
    },
    /// The engine factory failed while building a stream's engine on its
    /// worker (e.g. a constructor panic from invalid dimensions).
    EngineBuildFailed {
        /// The stream whose engine could not be built.
        stream_id: u64,
        /// Panic payload or constructor error, as text.
        message: String,
    },
    /// The engine panicked while processing a command and has been
    /// quarantined; the stream keeps reporting this error.
    EnginePanicked {
        /// The stream whose engine panicked.
        stream_id: u64,
        /// Panic payload, as text.
        message: String,
    },
    /// The stream has quarantined batches pending replay; this batch
    /// was diverted to the dead-letter queue (in order) instead of
    /// being applied, so a later replay stays deterministic. Repair and
    /// replay the stream's dead letters to resume normal service.
    StreamQuarantined {
        /// The quarantined stream.
        stream_id: u64,
        /// Dead letters pending for the stream (including this one).
        pending: usize,
    },
    /// The engine does not implement state capture; only engines with a
    /// bitwise-faithful snapshot (currently the continuous `SnsEngine`)
    /// can migrate between shards.
    SnapshotUnsupported {
        /// Display name of the engine.
        engine: String,
    },
    /// A shard index was out of range for the pool.
    ShardOutOfRange {
        /// Requested shard.
        shard: usize,
        /// Number of shards in the pool.
        shards: usize,
    },
    /// A serialized snapshot could not be decoded (or failed to encode).
    /// Truncation, corruption, and version skew all surface here as
    /// typed data instead of panics.
    Codec {
        /// What kind of failure was detected.
        fault: CodecFault,
        /// Byte offset at which the failure was detected.
        offset: usize,
        /// What was being decoded when it failed.
        detail: String,
    },
    /// A checkpoint-store filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, as text.
        message: String,
    },
    /// A protocol invariant the runtime relies on was violated — e.g. a
    /// worker replied to a ticket with a reply kind the protocol says it
    /// cannot produce. Formerly these sites were `unreachable!`; the
    /// typed variant lets one corrupted session fail without killing the
    /// shard worker and everything co-scheduled on it.
    Internal {
        /// Which invariant broke, as text (for the operator, not for
        /// matching).
        detail: String,
    },
    /// A compute-kernel entry point received a buffer whose length does
    /// not match the factor rank (the classic wrong-length-scratch bug).
    /// Kernels report this instead of panicking in release builds; the
    /// inner loops keep `debug_assert!`s only.
    KernelShape {
        /// Which buffer was mis-sized (e.g. `"mttkrp_row(out)"`).
        what: &'static str,
        /// The factor rank the buffer must match.
        expected: usize,
        /// The length actually received.
        got: usize,
    },
}

/// Failure classes of the snapshot codec (see [`SnsError::Codec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecFault {
    /// The byte stream ended before the structure it promised.
    Truncated,
    /// The leading magic bytes are not a SliceNStitch snapshot's.
    BadMagic,
    /// The snapshot's schema version is not supported by this build.
    UnsupportedVersion,
    /// The trailing checksum does not match the content.
    Checksum,
    /// The bytes parse but describe an inconsistent structure.
    Invalid,
}

impl fmt::Display for CodecFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CodecFault::Truncated => "truncated",
            CodecFault::BadMagic => "bad magic",
            CodecFault::UnsupportedVersion => "unsupported schema version",
            CodecFault::Checksum => "checksum mismatch",
            CodecFault::Invalid => "invalid structure",
        })
    }
}

impl SnsError {
    /// Wraps a per-tuple error into a [`SnsError::BatchAborted`] carrying
    /// the batch progress made before the failure.
    pub fn aborted_at(self, accepted: usize, applied: u64) -> SnsError {
        SnsError::BatchAborted { accepted, applied, source: Box::new(self) }
    }

    /// For batch errors, how many tuples were accepted before the
    /// failure; `None` for non-batch errors.
    pub fn accepted(&self) -> Option<usize> {
        match self {
            SnsError::BatchAborted { accepted, .. } => Some(*accepted),
            _ => None,
        }
    }

    /// The innermost non-batch error (itself, if not a batch error).
    pub fn root_cause(&self) -> &SnsError {
        match self {
            SnsError::BatchAborted { source, .. } => source.root_cause(),
            other => other,
        }
    }

    /// True for errors a client can retry verbatim later (currently only
    /// [`SnsError::Backpressure`]).
    pub fn is_retryable(&self) -> bool {
        matches!(self, SnsError::Backpressure { .. })
    }
}

impl fmt::Display for SnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnsError::OutOfOrder { previous, got } => {
                write!(f, "out-of-order tuple: time {got} after {previous}")
            }
            SnsError::OrderMismatch { expected, got } => {
                write!(f, "tuple has {got} categorical modes, window expects {expected}")
            }
            SnsError::OutOfBounds { mode, index, len } => {
                write!(f, "index {index} out of bounds for mode {mode} (length {len})")
            }
            SnsError::BatchAborted { accepted, applied, source } => {
                write!(
                    f,
                    "batch aborted after {accepted} accepted tuples \
                     ({applied} updates applied): {source}"
                )
            }
            SnsError::Backpressure { stream_id, shard, depth, capacity } => {
                write!(
                    f,
                    "stream {stream_id}: shard {shard} queue full \
                     ({depth}/{capacity} commands in flight)"
                )
            }
            SnsError::StreamClosed { stream_id } => {
                write!(f, "stream {stream_id} is closed")
            }
            SnsError::EngineBuildFailed { stream_id, message } => {
                write!(f, "stream {stream_id}: engine build failed: {message}")
            }
            SnsError::EnginePanicked { stream_id, message } => {
                write!(f, "stream {stream_id}: engine panicked: {message}")
            }
            SnsError::StreamQuarantined { stream_id, pending } => {
                write!(
                    f,
                    "stream {stream_id}: quarantined ({pending} dead-letter \
                     batches pending replay)"
                )
            }
            SnsError::SnapshotUnsupported { engine } => {
                write!(f, "engine {engine} does not support snapshots")
            }
            SnsError::ShardOutOfRange { shard, shards } => {
                write!(f, "shard {shard} out of range (pool has {shards})")
            }
            SnsError::Codec { fault, offset, detail } => {
                write!(f, "snapshot codec: {fault} at byte {offset} ({detail})")
            }
            SnsError::Io { path, message } => {
                write!(f, "checkpoint io: {path}: {message}")
            }
            SnsError::Internal { detail } => {
                write!(f, "internal protocol invariant violated: {detail}")
            }
            SnsError::KernelShape { what, expected, got } => {
                write!(
                    f,
                    "kernel buffer {what}: length {got} must equal the factor rank {expected}"
                )
            }
        }
    }
}

impl std::error::Error for SnsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnsError::BatchAborted { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        assert!(SnsError::OutOfOrder { previous: 5, got: 3 }.to_string().contains('3'));
        assert!(SnsError::OrderMismatch { expected: 2, got: 3 }.to_string().contains('2'));
        assert!(SnsError::OutOfBounds { mode: 1, index: 9, len: 4 }.to_string().contains("mode 1"));
        let batch = SnsError::OutOfOrder { previous: 7, got: 2 }.aborted_at(11, 30);
        assert!(batch.to_string().contains("11 accepted"));
        assert!(batch.to_string().contains("after 7"));
        let bp = SnsError::Backpressure { stream_id: 1, shard: 2, depth: 4, capacity: 4 };
        assert!(bp.to_string().contains("full"));
        assert!(bp.to_string().contains("shard 2"));
        assert!(bp.to_string().contains("4/4"));
        assert!(SnsError::StreamClosed { stream_id: 8 }.to_string().contains("closed"));
        assert!(SnsError::StreamQuarantined { stream_id: 5, pending: 3 }
            .to_string()
            .contains("3 dead-letter"));
        assert!(SnsError::EngineBuildFailed { stream_id: 1, message: "w=0".into() }
            .to_string()
            .contains("build failed"));
        assert!(SnsError::EnginePanicked { stream_id: 1, message: "boom".into() }
            .to_string()
            .contains("boom"));
        assert!(SnsError::SnapshotUnsupported { engine: "ALS(1)".into() }
            .to_string()
            .contains("snapshot"));
        assert!(SnsError::ShardOutOfRange { shard: 7, shards: 4 }.to_string().contains('7'));
        let codec =
            SnsError::Codec { fault: CodecFault::Truncated, offset: 12, detail: "spec".into() };
        assert!(codec.to_string().contains("truncated") && codec.to_string().contains("12"));
        assert!(SnsError::Io { path: "/tmp/x".into(), message: "denied".into() }
            .to_string()
            .contains("denied"));
        let shape = SnsError::KernelShape { what: "mttkrp_row(out)", expected: 20, got: 19 };
        assert!(shape.to_string().contains("mttkrp_row(out)"));
        assert!(shape.to_string().contains("19") && shape.to_string().contains("20"));
        let internal = SnsError::Internal { detail: "snapshot ticket got Batch reply".into() };
        assert!(internal.to_string().contains("invariant"));
        assert!(internal.to_string().contains("Batch reply"));
    }

    #[test]
    fn codec_faults_display() {
        for fault in [
            CodecFault::Truncated,
            CodecFault::BadMagic,
            CodecFault::UnsupportedVersion,
            CodecFault::Checksum,
            CodecFault::Invalid,
        ] {
            assert!(!fault.to_string().is_empty());
        }
    }

    #[test]
    fn batch_helpers() {
        let inner = SnsError::OutOfOrder { previous: 9, got: 1 };
        let e = inner.clone().aborted_at(3, 12);
        assert_eq!(e.accepted(), Some(3));
        assert_eq!(e.root_cause(), &inner);
        assert_eq!(inner.accepted(), None);
        let bp = SnsError::Backpressure { stream_id: 0, shard: 0, depth: 1, capacity: 1 };
        assert!(bp.is_retryable());
        assert!(!inner.is_retryable());
        assert!(!SnsError::StreamQuarantined { stream_id: 0, pending: 1 }.is_retryable());
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error;
        let e = SnsError::OutOfOrder { previous: 2, got: 1 }.aborted_at(0, 0);
        assert!(e.source().is_some());
        assert!(SnsError::StreamClosed { stream_id: 0 }.source().is_none());
    }
}
