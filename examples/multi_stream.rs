//! Multi-tenant serving with the sharded engine pool.
//!
//! ```bash
//! cargo run --release --example multi_stream
//! ```
//!
//! Eight independent tensor streams — four cities' continuous
//! SliceNStitch traffic models and four periodic-baseline tenants —
//! served concurrently by one `EnginePool`, then checked bitwise against
//! serial execution of the same engines with the same derived seeds.

use slicenstitch::baselines::{BaselineEngine, OnlineScp, PeriodicCpd};
use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig, SnsEngine};
use slicenstitch::data::{generate, GeneratorConfig};
use slicenstitch::runtime::pool::stream_seed;
use slicenstitch::runtime::{EnginePool, PoolConfig, StreamingCpd};
use slicenstitch::stream::StreamTuple;

const BASE_DIMS: [usize; 2] = [30, 25];
const W: usize = 5;
const T: u64 = 200;
const BASE_SEED: u64 = 0xc17e5;

/// Even stream ids run a continuous SNS⁺_RND model, odd ids a windowed
/// OnlineSCP baseline — one pool serves both engine families.
fn build_engine(id: u64) -> impl FnOnce(u64) -> Box<dyn StreamingCpd> + Send + 'static {
    move |seed| {
        if id % 2 == 0 {
            let config = SnsConfig { rank: 5, theta: 15, seed, ..Default::default() };
            Box::new(SnsEngine::new(&BASE_DIMS, W, T, AlgorithmKind::PlusRnd, &config))
        } else {
            let algo: Box<dyn PeriodicCpd> =
                Box::new(OnlineScp::new(&[BASE_DIMS[0], BASE_DIMS[1], W], 5, seed));
            Box::new(BaselineEngine::new(&BASE_DIMS, W, T, algo))
        }
    }
}

/// Each tenant's stream: same structure, tenant-specific seed.
fn tenant_stream(id: u64) -> Vec<StreamTuple> {
    generate(&GeneratorConfig {
        base_dims: BASE_DIMS.to_vec(),
        n_components: 4,
        events: 4_000,
        duration: 5 * W as u64 * T,
        zipf_exponent: 1.5,
        noise_fraction: 0.1,
        day_ticks: 500,
        seed: 0xd00d + id,
        ..Default::default()
    })
}

fn als_opts() -> AlsOptions {
    AlsOptions { max_iters: 20, tol: 1e-4, ..Default::default() }
}

fn main() {
    let ids: Vec<u64> = (0..8).collect();
    let streams: Vec<Vec<StreamTuple>> = ids.iter().map(|&id| tenant_stream(id)).collect();
    let cuts: Vec<usize> =
        streams.iter().map(|s| s.partition_point(|t| t.time <= W as u64 * T)).collect();

    // Concurrent run: one pool, streams sharded across workers, commands
    // interleaved across tenants the way a frontend would deliver them.
    let pool = EnginePool::new(PoolConfig { shards: 4, base_seed: BASE_SEED });
    println!("pool: {} worker shards, {} tenant streams", pool.shards(), ids.len());
    for &id in &ids {
        pool.open_stream(id, build_engine(id));
    }
    let start = std::time::Instant::now();
    let max_len = streams.iter().map(Vec::len).max().unwrap();
    for i in 0..max_len {
        for (&id, (s, &cut)) in ids.iter().zip(streams.iter().zip(&cuts)) {
            if i < cut {
                pool.prefill(id, s[i]);
            } else if i == cut {
                pool.warm_start(id, &als_opts());
                pool.ingest(id, s[i]);
            } else if i < s.len() {
                pool.ingest(id, s[i]);
            }
        }
    }
    let pooled: Vec<_> = ids.iter().map(|&id| pool.report(id)).collect();
    let pooled_secs = start.elapsed().as_secs_f64();
    pool.join();

    // Serial reference: identical engines, identical derived seeds.
    let start = std::time::Instant::now();
    let mut serial = Vec::new();
    for (&id, (s, &cut)) in ids.iter().zip(streams.iter().zip(&cuts)) {
        let mut engine = build_engine(id)(stream_seed(BASE_SEED, id));
        engine.prefill_all(&s[..cut]).expect("chronological stream");
        engine.warm_start(&als_opts());
        for tu in &s[cut..] {
            engine.ingest(*tu).expect("chronological stream");
        }
        serial.push((engine.name(), engine.fitness(), engine.updates_applied()));
    }
    let serial_secs = start.elapsed().as_secs_f64();

    println!("\n{:>6}  {:<10} {:>10} {:>9}  match", "stream", "engine", "fitness", "updates");
    let mut all_match = true;
    for (report, (name, fitness, updates)) in pooled.iter().zip(&serial) {
        let ok = report.fitness.to_bits() == fitness.to_bits()
            && report.updates_applied == *updates
            && &report.name == name
            && report.error.is_none();
        all_match &= ok;
        println!(
            "{:>6}  {:<10} {:>10.4} {:>9}  {}",
            report.stream_id,
            report.name,
            report.fitness,
            report.updates_applied,
            if ok { "bitwise" } else { "MISMATCH" }
        );
    }
    println!("\npooled: {pooled_secs:.2}s  serial: {serial_secs:.2}s");
    assert!(all_match, "pooled results diverged from serial execution");
    println!("all {} pooled streams bitwise-identical to serial runs", ids.len());
}
