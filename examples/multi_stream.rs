//! Multi-tenant serving with the session-based engine pool.
//!
//! ```bash
//! cargo run --release --example multi_stream
//! ```
//!
//! Three acts:
//!
//! 1. **Batched, acknowledged serving** — eight independent tensor
//!    streams (four cities' continuous SliceNStitch traffic models and
//!    four periodic-baseline tenants) served concurrently through
//!    [`StreamSession`]s, then checked **bitwise** against serial
//!    per-tuple execution of the same engine specs with the same
//!    derived seeds.
//! 2. **Backpressure** — a deliberately tiny shard queue
//!    (`queue_depth = 4`) and a slow engine: non-blocking submits
//!    surface typed `SnsError::Backpressure` instead of growing memory,
//!    and the producer sheds to the blocking path.
//! 3. **Live migration** — a running stream is snapshotted, closed,
//!    restored onto a *different shard*, and continues
//!    bitwise-identically to a run that never moved.

use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig};
use slicenstitch::data::{generate, GeneratorConfig};
use slicenstitch::runtime::pool::stream_seed;
use slicenstitch::runtime::{
    BaselineKind, EnginePool, EngineSpec, PoolConfig, SnsError, StreamSession,
};
use slicenstitch::stream::StreamTuple;

const BASE_DIMS: [usize; 2] = [30, 25];
const W: usize = 5;
const T: u64 = 200;
const BASE_SEED: u64 = 0xc17e5;
const BATCH: usize = 64;

/// Even stream ids run a continuous SNS⁺_RND model, odd ids a windowed
/// OnlineSCP baseline — one pool serves both engine families.
fn tenant_spec(id: u64) -> EngineSpec {
    if id % 2 == 0 {
        let config = SnsConfig { rank: 5, theta: 15, ..Default::default() };
        EngineSpec::sns(&BASE_DIMS, W, T, AlgorithmKind::PlusRnd, &config)
    } else {
        EngineSpec::baseline(&BASE_DIMS, W, T, 5, BaselineKind::OnlineScp)
    }
}

/// Each tenant's stream: same structure, tenant-specific seed.
fn tenant_stream(id: u64) -> Vec<StreamTuple> {
    generate(&GeneratorConfig {
        base_dims: BASE_DIMS.to_vec(),
        n_components: 4,
        events: 4_000,
        duration: 5 * W as u64 * T,
        zipf_exponent: 1.5,
        noise_fraction: 0.1,
        day_ticks: 500,
        seed: 0xd00d + id,
        ..Default::default()
    })
}

fn als_opts() -> AlsOptions {
    AlsOptions { max_iters: 20, tol: 1e-4, ..Default::default() }
}

/// Act 1: pooled batched serving, checked bitwise against serial
/// per-tuple runs.
fn act_batched_serving() {
    let ids: Vec<u64> = (0..8).collect();
    let streams: Vec<Vec<StreamTuple>> = ids.iter().map(|&id| tenant_stream(id)).collect();
    let cuts: Vec<usize> =
        streams.iter().map(|s| s.partition_point(|t| t.time <= W as u64 * T)).collect();

    let pool = EnginePool::new(PoolConfig {
        shards: 4,
        base_seed: BASE_SEED,
        queue_depth: 256,
        ..Default::default()
    });
    println!("pool: {} worker shards, {} tenant streams", pool.shards(), ids.len());
    let mut sessions: Vec<StreamSession> =
        ids.iter().map(|&id| pool.open(id, tenant_spec(id)).expect("engine builds")).collect();

    let start = std::time::Instant::now();
    // Initialization protocol, batched per tenant.
    for (session, (s, &cut)) in sessions.iter_mut().zip(streams.iter().zip(&cuts)) {
        for chunk in s[..cut].chunks(BATCH) {
            let _ = session.prefill_batch(chunk).expect("chronological stream");
        }
        let _ = session.warm_start(&als_opts()).expect("warm start");
    }
    // Live phase: batches interleaved across tenants, the way a frontend
    // would deliver them; every batch is acknowledged.
    let mut accepted = vec![0usize; ids.len()];
    let max_live = streams.iter().zip(&cuts).map(|(s, &c)| s.len() - c).max().unwrap();
    for start_off in (0..max_live).step_by(BATCH) {
        for ((session, acc), (s, &cut)) in
            sessions.iter_mut().zip(&mut accepted).zip(streams.iter().zip(&cuts))
        {
            let lo = cut + start_off;
            if lo < s.len() {
                let hi = (lo + BATCH).min(s.len());
                let receipt = session.ingest_batch(&s[lo..hi]).expect("chronological stream");
                *acc += receipt.accepted;
            }
        }
    }
    let pooled: Vec<_> = sessions.iter_mut().map(|se| se.report().expect("worker alive")).collect();
    let pooled_secs = start.elapsed().as_secs_f64();
    drop(sessions);
    pool.join();

    // Serial reference: identical specs, identical derived seeds,
    // per-tuple ingestion (no batching) — must agree bit for bit.
    let start = std::time::Instant::now();
    let mut serial = Vec::new();
    for (&id, (s, &cut)) in ids.iter().zip(streams.iter().zip(&cuts)) {
        let mut engine = tenant_spec(id).build(stream_seed(BASE_SEED, id));
        engine.prefill_all(&s[..cut]).expect("chronological stream");
        engine.warm_start(&als_opts());
        for tu in &s[cut..] {
            engine.ingest(*tu).expect("chronological stream");
        }
        serial.push((engine.name(), engine.fitness(), engine.updates_applied()));
    }
    let serial_secs = start.elapsed().as_secs_f64();

    println!("\n{:>6}  {:<10} {:>10} {:>9}  match", "stream", "engine", "fitness", "updates");
    let mut all_match = true;
    for (report, (name, fitness, updates)) in pooled.iter().zip(&serial) {
        let ok = report.fitness.to_bits() == fitness.to_bits()
            && report.updates_applied == *updates
            && &report.name == name
            && report.error.is_none();
        all_match &= ok;
        println!(
            "{:>6}  {:<10} {:>10.4} {:>9}  {}",
            report.stream_id,
            report.name,
            report.fitness,
            report.updates_applied,
            if ok { "bitwise" } else { "MISMATCH" }
        );
    }
    println!("\npooled (batched): {pooled_secs:.2}s  serial (per-tuple): {serial_secs:.2}s");
    assert!(all_match, "pooled results diverged from serial execution");
    println!("all {} pooled streams bitwise-identical to serial per-tuple runs\n", ids.len());
}

/// Act 2: a tiny queue in front of a slow engine — non-blocking submits
/// observe typed backpressure and shed to the blocking path.
fn act_backpressure() {
    // SNS_MAT runs a full ALS sweep per event: deliberately slow.
    let slow_spec = EngineSpec::sns(
        &BASE_DIMS,
        W,
        T,
        AlgorithmKind::Mat,
        &SnsConfig { rank: 5, ..Default::default() },
    );
    let pool = EnginePool::new(PoolConfig {
        shards: 1,
        base_seed: BASE_SEED,
        queue_depth: 4,
        ..Default::default()
    });
    let mut session = pool.open(0, slow_spec).expect("engine builds");

    let stream = tenant_stream(0);
    let (mut submitted, mut shed, mut acked) = (0usize, 0usize, 0usize);
    for chunk in stream[..2_000].chunks(16) {
        match session.try_ingest_batch(chunk) {
            Ok(_ticket) => submitted += 1,
            Err(SnsError::Backpressure { capacity, .. }) => {
                // Typed, retryable: here we shed to the blocking path,
                // which waits for queue space instead of buffering.
                assert_eq!(capacity, 4);
                shed += 1;
                let _ = session.ingest_batch(chunk).expect("chronological stream");
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        // Opportunistically collect acknowledgments.
        while let Some(receipt) = session.try_recv_receipt() {
            acked += receipt.expect("chronological stream").accepted;
        }
    }
    while let Some(receipt) = session.recv_receipt() {
        acked += receipt.expect("chronological stream").accepted;
    }
    println!(
        "backpressure demo (queue_depth=4): {submitted} batches pipelined, \
         {shed} hit SnsError::Backpressure and took the blocking path"
    );
    println!("receipts acknowledged {acked} pipelined tuples; in_flight={}\n", session.in_flight());
    assert_eq!(session.in_flight(), 0);
}

/// Act 3: snapshot a live stream, restore it on another shard, and
/// verify the migrated run is bitwise-identical to one that never moved.
fn act_migration() {
    let stream = tenant_stream(2);
    let spec = tenant_spec(2); // continuous engine: snapshot-capable
    let half = stream.len() / 2;

    let pool = EnginePool::new(PoolConfig {
        shards: 4,
        base_seed: BASE_SEED,
        queue_depth: 256,
        ..Default::default()
    });
    let mut session = pool.open(2, spec.clone()).expect("engine builds");
    let home_shard = session.shard();
    for chunk in stream[..half].chunks(BATCH) {
        let _ = session.ingest_batch(chunk).expect("chronological stream");
    }

    // Capture complete state (window + pending events + factors + RNG +
    // clock), close the home slot, resume on a different shard.
    let snapshot = session.snapshot().expect("continuous engines snapshot");
    session.close();
    let target_shard = (home_shard + 1) % pool.shards();
    let mut migrated = pool.restore(snapshot, target_shard).expect("shard in range");
    for chunk in stream[half..].chunks(BATCH) {
        let _ = migrated.ingest_batch(chunk).expect("chronological stream");
    }
    let report = migrated.report().expect("worker alive");
    drop(migrated);
    pool.join();

    // Reference: the same engine never migrated.
    let mut reference = spec.build(stream_seed(BASE_SEED, 2));
    for tu in &stream {
        reference.ingest(*tu).expect("chronological stream");
    }
    println!(
        "migration demo: stream 2 moved shard {home_shard} → {target_shard} mid-stream \
         ({half} tuples in)"
    );
    println!(
        "  migrated: fitness {:.6}, {} updates | unmigrated: fitness {:.6}, {} updates",
        report.fitness,
        report.updates_applied,
        reference.fitness(),
        reference.updates_applied()
    );
    assert_eq!(report.fitness.to_bits(), reference.fitness().to_bits());
    assert_eq!(report.updates_applied, reference.updates_applied());
    println!("  migrated run is bitwise-identical to the unmigrated run");
}

fn main() {
    act_batched_serving();
    act_backpressure();
    act_migration();
}
