//! Compare all five SliceNStitch variants on one stream — the
//! practitioner's-guide trade-off (Section VI-F) in one table: SNS_MAT is
//! most accurate but slowest; SNS⁺_RND fastest; SNS⁺_VEC in between;
//! unclipped variants are fast but can destabilize.
//!
//! ```bash
//! cargo run --release --example algorithm_comparison
//! ```

use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig, SnsEngine};
use slicenstitch::data::{divvy_like, generate};
use std::time::Instant;

fn main() {
    let spec = divvy_like();
    let stream = generate(&spec.generator(12_000, 21));
    let prefill_until = spec.window as u64 * spec.period;
    let cut = stream.partition_point(|t| t.time <= prefill_until);

    println!(
        "{} events on a {:?} window (W={}, T={} {})",
        stream.len(),
        spec.base_dims,
        spec.window,
        spec.period,
        spec.tick_unit
    );
    println!("\n{:<10} {:>12} {:>12} {:>10}", "method", "us/event", "fitness", "diverged");
    println!("{}", "-".repeat(48));
    for kind in AlgorithmKind::ALL {
        let sns =
            SnsConfig { rank: spec.rank, theta: spec.theta, eta: spec.eta, ..Default::default() };
        let mut engine = SnsEngine::new(spec.base_dims, spec.window, spec.period, kind, &sns);
        for tu in &stream[..cut] {
            engine.prefill(*tu).unwrap();
        }
        engine.warm_start(&AlsOptions { max_iters: 20, ..Default::default() });
        // SNS_MAT sweeps the whole window per event — cap its share.
        let n = if kind == AlgorithmKind::Mat { 300 } else { stream.len() - cut };
        let started = Instant::now();
        for tu in stream[cut..].iter().take(n) {
            engine.ingest(*tu).unwrap();
        }
        let us = started.elapsed().as_secs_f64() * 1e6 / engine.updates_applied().max(1) as f64;
        println!(
            "{:<10} {:>12.2} {:>12.4} {:>10}",
            kind.name(),
            us,
            engine.fitness(),
            engine.diverged()
        );
    }
    println!("\nPractitioner's guide (paper VI-F): prefer SNS_MAT / SNS+_VEC / SNS+_RND;");
    println!("pick the most accurate one that fits your per-event latency budget.");
}
