//! Real-time anomaly detection (the paper's Section VI-G application),
//! run as a scenario: spikes are injected into a taxi-like stream and an
//! [`AnomalyCpd`] decorator flags them by the z-score of their
//! reconstruction error the moment they arrive — no waiting for a period
//! boundary, and no perturbation of the wrapped engine's factors.
//!
//! Two deployments of the same decorator:
//! 1. **direct** — wrap an engine locally and inspect the detector for
//!    top-k precision against the injected ground truth;
//! 2. **pooled** — describe the decoration declaratively with
//!    [`EngineSpec::with_anomaly`], replay the trace through an
//!    `EnginePool` session, and read the anomaly summary off the
//!    `StreamReport`.
//!
//! ```bash
//! cargo run --release --example anomaly_detection
//! ```

use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig};
use slicenstitch::data::replay::{replay, ReplayPlan};
use slicenstitch::data::{generate, inject_anomalies, nytaxi_like};
use slicenstitch::runtime::{
    AnomalyConfig, AnomalyCpd, EnginePool, EngineSpec, PoolConfig, StreamingCpd,
};

fn main() {
    let spec = nytaxi_like();
    let clean = generate(&spec.generator(15_000, 7));
    let prefill_until = spec.window as u64 * spec.period;
    let (stream, injected) = inject_anomalies(
        &clean,
        spec.base_dims,
        10,  // number of spikes
        5.0, // 5× the max normal change, as in the paper
        prefill_until + 1,
        spec.duration(),
        99,
    );
    println!("injected {} spikes of magnitude {}", injected.len(), injected[0].value);

    let sns = SnsConfig { rank: spec.rank, theta: spec.theta, eta: spec.eta, ..Default::default() };
    let engine_spec =
        EngineSpec::sns(spec.base_dims, spec.window, spec.period, AlgorithmKind::PlusRnd, &sns);
    let anomaly = AnomalyConfig { threshold: 10.0, max_events: stream.len() };

    // --- 1. Direct decoration: full detector access. -------------------
    let mut engine = AnomalyCpd::new(engine_spec.clone().with_seed(41).build(0), anomaly);
    let cut = stream.partition_point(|t| t.time <= prefill_until);
    engine.prefill_all(&stream[..cut]).expect("chronological");
    engine.warm_start(&AlsOptions::default());
    engine.ingest_all(&stream[cut..]).expect("chronological");
    for ev in engine.detector().events().iter().filter(|e| e.z > 10.0) {
        println!(
            "t={:>7}  coord={:?}  err={:>6.1}  z={:>7.1}  <-- flagged",
            ev.time, ev.coord, ev.error, ev.z
        );
    }

    // Score the run: how many of the top-10 flags were true injections?
    let top = engine.detector().top_k(injected.len());
    let hits = top
        .iter()
        .filter(|e| {
            injected.iter().any(|a| {
                a.time == e.time
                    && a.coords.as_slice() == &e.coord.as_slice()[..e.coord.order() - 1]
            })
        })
        .count();
    println!(
        "\nprecision@{}: {:.2} ({} of {} top flags are injected spikes)",
        injected.len(),
        hits as f64 / injected.len() as f64,
        hits,
        injected.len()
    );
    println!("detection is immediate: spikes are scored at their own arrival event.");

    // --- 2. Pooled decoration: declarative spec, summary on report. ----
    let pool = EnginePool::new(PoolConfig::default());
    let mut session = pool
        .open(1, engine_spec.with_anomaly(anomaly))
        .expect("decorated engine builds on its worker");
    let plan = ReplayPlan::for_dataset(&spec, AlsOptions::default());
    let replayed = replay(&mut session, &stream, &plan).expect("chronological trace");
    let report = session.report().expect("live session");
    let summary = report.anomalies.expect("decorated stream reports a summary");
    println!(
        "\npooled [{}] shard {}: {} batches, fitness {:.4}",
        report.name,
        session.shard(),
        replayed.batches,
        report.fitness,
    );
    println!(
        "pooled summary: {} scored, {} flagged at z>={}, max z {:.1}, mean error {:.3}",
        summary.scored, summary.flagged, summary.threshold, summary.max_z, summary.mean_error
    );
    assert!(summary.flagged >= 1, "pooled decorator must flag the spikes too");
    session.close();
    pool.join();
}
