//! Real-time anomaly detection (the paper's Section VI-G application).
//!
//! ```bash
//! cargo run --release --example anomaly_detection
//! ```
//!
//! Injects spikes into a taxi-like stream and flags them by the z-score
//! of their reconstruction error the moment they arrive — no waiting for
//! a period boundary.

use slicenstitch::core::anomaly::AnomalyDetector;
use slicenstitch::core::update::{ContinuousUpdater, Updater};
use slicenstitch::core::{AlgorithmKind, SnsConfig};
use slicenstitch::data::{generate, inject_anomalies, nytaxi_like};
use slicenstitch::stream::{ContinuousWindow, DeltaKind};

fn main() {
    let spec = nytaxi_like();
    let clean = generate(&spec.generator(15_000, 7));
    let prefill_until = spec.window as u64 * spec.period;
    let (stream, injected) = inject_anomalies(
        &clean,
        spec.base_dims,
        10,  // number of spikes
        5.0, // 5× the max normal change, as in the paper
        prefill_until + 1,
        spec.duration(),
        99,
    );
    println!("injected {} spikes of magnitude {}", injected.len(), injected[0].value);

    let sns = SnsConfig { rank: spec.rank, theta: spec.theta, eta: spec.eta, ..Default::default() };
    let mut dims = spec.base_dims.to_vec();
    dims.push(spec.window);
    let mut window = ContinuousWindow::new(spec.base_dims, spec.window, spec.period);
    let mut updater = Updater::new(AlgorithmKind::PlusRnd, &dims, &sns);
    let mut detector = AnomalyDetector::new();
    let mut buf = Vec::new();
    let mut warmed = false;

    for tu in &stream {
        if !warmed && tu.time > prefill_until {
            let warm =
                slicenstitch::core::als::als(window.tensor(), spec.rank, &Default::default());
            updater.install(warm.kruskal, warm.grams);
            warmed = true;
        }
        buf.clear();
        window.ingest(*tu, &mut buf).expect("chronological");
        for d in &buf {
            if warmed {
                if d.kind == DeltaKind::Arrival {
                    // Score BEFORE the model absorbs the event.
                    let (coord, _) = d.changes.as_slice()[0];
                    let ev = detector.observe(window.tensor(), updater.kruskal(), &coord, d.time);
                    if ev.z > 10.0 {
                        println!(
                            "t={:>7}  coord={:?}  err={:>6.1}  z={:>7.1}  <-- flagged",
                            ev.time, ev.coord, ev.error, ev.z
                        );
                    }
                }
                updater.apply(window.tensor(), d);
            }
        }
    }

    // Score the run: how many of the top-10 flags were true injections?
    let top = detector.top_k(injected.len());
    let hits = top
        .iter()
        .filter(|e| {
            injected.iter().any(|a| {
                a.time == e.time
                    && a.coords.as_slice() == &e.coord.as_slice()[..e.coord.order() - 1]
            })
        })
        .count();
    println!(
        "\nprecision@{}: {:.2} ({} of {} top flags are injected spikes)",
        injected.len(),
        hits as f64 / injected.len() as f64,
        hits,
        injected.len()
    );
    println!("detection is immediate: spikes are scored at their own arrival event.");
}
