//! Live traffic monitoring: stream a day of taxi-like events and report,
//! once per simulated hour, the strongest latent traffic pattern and how
//! well the model currently explains the window — the intro's motivating
//! use case ("analyze multi-aspect data streams continuously in real
//! time").
//!
//! ```bash
//! cargo run --release --example traffic_monitoring
//! ```

use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig, SnsEngine};
use slicenstitch::data::{generate, nytaxi_like};

fn main() {
    let spec = nytaxi_like();
    let stream = generate(&spec.generator(20_000, 3));
    let prefill_until = spec.window as u64 * spec.period;
    let cut = stream.partition_point(|t| t.time <= prefill_until);

    let sns = SnsConfig { rank: spec.rank, theta: spec.theta, eta: spec.eta, ..Default::default() };
    let mut engine =
        SnsEngine::new(spec.base_dims, spec.window, spec.period, AlgorithmKind::PlusRnd, &sns);
    for tu in &stream[..cut] {
        engine.prefill(*tu).unwrap();
    }
    engine.warm_start(&AlsOptions::default());
    println!(
        "monitoring {}x{} taxi traffic, one report per simulated hour\n",
        spec.base_dims[0], spec.base_dims[1]
    );

    let mut next_report = prefill_until + spec.period;
    for tu in &stream[cut..] {
        engine.ingest(*tu).unwrap();
        if tu.time >= next_report {
            next_report += spec.period;
            let k = engine.kruskal();
            // Strongest component = largest column norm product across
            // modes; report its top source and destination.
            let rank = k.rank();
            let mut best = (0usize, f64::MIN);
            for r in 0..rank {
                let strength: f64 = k
                    .factors
                    .iter()
                    .map(|f| (0..f.rows()).map(|i| f[(i, r)] * f[(i, r)]).sum::<f64>().sqrt())
                    .product();
                if strength > best.1 {
                    best = (r, strength);
                }
            }
            let (r, strength) = best;
            let argmax = |m: usize| {
                let f = &k.factors[m];
                (0..f.rows()).max_by(|&a, &b| f[(a, r)].total_cmp(&f[(b, r)])).unwrap_or(0)
            };
            println!(
                "hour {:>3}: fitness {:>6.3} | top pattern #{:<2} strength {:>8.1} | hot flow {} -> {}",
                tu.time / spec.period,
                engine.fitness(),
                r,
                strength,
                argmax(0),
                argmax(1),
            );
        }
    }
    println!("\nevents processed: {} (window updates: {})", stream.len(), engine.updates_applied());
}
