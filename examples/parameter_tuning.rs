//! Hyperparameter exploration: the θ and η effects of Figs. 7–8 on a
//! small stream, plus the rank trade-off.
//!
//! ```bash
//! cargo run --release --example parameter_tuning
//! ```

use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig, SnsEngine};
use slicenstitch::data::{generate, GeneratorConfig};
use slicenstitch::stream::StreamTuple;
use std::time::Instant;

fn run(stream: &[StreamTuple], cut: usize, sns: &SnsConfig, kind: AlgorithmKind) -> (f64, f64) {
    let mut engine = SnsEngine::new(&[40, 40], 8, 500, kind, sns);
    for tu in &stream[..cut] {
        engine.prefill(*tu).unwrap();
    }
    engine.warm_start(&AlsOptions { max_iters: 20, ..Default::default() });
    let started = Instant::now();
    for tu in &stream[cut..] {
        engine.ingest(*tu).unwrap();
    }
    let us = started.elapsed().as_secs_f64() * 1e6 / engine.updates_applied().max(1) as f64;
    (engine.fitness(), us)
}

fn main() {
    let config = GeneratorConfig {
        base_dims: vec![40, 40],
        n_components: 5,
        events: 15_000,
        duration: 24_000,
        zipf_exponent: 1.6,
        noise_fraction: 0.1,
        day_ticks: 4_000,
        ..Default::default()
    };
    let stream = generate(&config);
    let cut = stream.partition_point(|t| t.time <= 8 * 500);

    println!(
        "-- theta sweep (SNS+_RND): fitness rises with diminishing returns, time rises linearly --"
    );
    for theta in [5usize, 10, 20, 40, 80] {
        let sns = SnsConfig { rank: 10, theta, eta: 1000.0, ..Default::default() };
        let (fit, us) = run(&stream, cut, &sns, AlgorithmKind::PlusRnd);
        println!("theta={theta:>3}  fitness={fit:.4}  {us:>7.2} us/event");
    }

    println!("\n-- eta sweep (SNS+_RND): insensitive while eta is small enough --");
    for eta in [32.0, 100.0, 1000.0, 10_000.0] {
        let sns = SnsConfig { rank: 10, theta: 20, eta, ..Default::default() };
        let (fit, us) = run(&stream, cut, &sns, AlgorithmKind::PlusRnd);
        println!("eta={eta:>7.0}  fitness={fit:.4}  {us:>7.2} us/event");
    }

    println!("\n-- rank sweep (SNS+_VEC): more components fit better, cost more --");
    for rank in [2usize, 5, 10, 20] {
        let sns = SnsConfig { rank, theta: 20, eta: 1000.0, ..Default::default() };
        let (fit, us) = run(&stream, cut, &sns, AlgorithmKind::PlusVec);
        println!("rank={rank:>3}  fitness={fit:.4}  {us:>7.2} us/event");
    }
}
