//! Trace replay end to end: export a synthetic stream in the original
//! SliceNStitch release's CSV event format, read it back with
//! [`read_trace`], and replay it through a pooled stream session with the
//! deterministic replay driver — the drop-in path for running this
//! library on the paper's real traces.
//!
//! The replay is verified bitwise against a serial run of the same spec
//! and seed: pooling, batching, and the CSV round trip are all invisible
//! to the model.
//!
//! ```bash
//! cargo run --release --example csv_pipeline
//! ```

use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig};
use slicenstitch::data::csvio::write_stream;
use slicenstitch::data::replay::{read_trace, replay, ReplayPlan};
use slicenstitch::data::{generate, GeneratorConfig};
use slicenstitch::runtime::pool::stream_seed;
use slicenstitch::runtime::{EnginePool, EngineSpec, PoolConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = GeneratorConfig {
        base_dims: vec![30, 30],
        events: 5_000,
        duration: 10_000,
        day_ticks: 2_000,
        ..Default::default()
    };
    let stream = generate(&config);

    // Write to a temp CSV, read it back with the trace loader.
    let path = std::env::temp_dir().join("slicenstitch_events.csv");
    write_stream(std::fs::File::create(&path)?, &stream)?;
    let size = std::fs::metadata(&path)?.len();
    let trace = read_trace(&path)?;
    println!(
        "wrote {} events ({} bytes) to {} and read them back",
        trace.len(),
        size,
        path.display()
    );
    assert_eq!(trace, stream, "CSV round trip must be lossless");
    std::fs::remove_file(&path).ok();

    // The protocol: prefill the first five 500-tick units, warm-start
    // with batch ALS, then replay one batch per period.
    let spec = EngineSpec::sns(
        &[30, 30],
        5,
        500,
        AlgorithmKind::PlusVec,
        &SnsConfig { rank: 8, ..Default::default() },
    );
    let plan = ReplayPlan {
        prefill_until: Some(2_500),
        warm_start: Some(AlsOptions::default()),
        bucket_ticks: 500,
        max_batch: 512,
        advance_to: None,
    };

    // Replay through a pooled session …
    let stream_id = 1u64;
    let base_seed = 0x5eed;
    let pool = EnginePool::new(PoolConfig { shards: 4, base_seed, ..Default::default() });
    let mut session = pool.open(stream_id, spec.clone())?;
    let report = replay(&mut session, &trace, &plan)?;
    let health = session.report()?;
    println!(
        "replayed: {} prefilled + {} live tuples in {} batches ({} factor updates), shard {}",
        report.prefilled,
        report.ingested,
        report.batches,
        report.updates,
        session.shard(),
    );
    println!("decomposed: final fitness {:.4}", health.fitness);

    // … and verify bitwise against a serial run of the same spec + seed.
    let mut serial = spec.build(stream_seed(base_seed, stream_id));
    let cut = trace.partition_point(|t| t.time <= 2_500);
    serial.prefill_all(&trace[..cut])?;
    serial.warm_start(&AlsOptions::default());
    serial.ingest_all(&trace[cut..])?;
    assert_eq!(
        health.fitness.to_bits(),
        serial.fitness().to_bits(),
        "pooled replay must be bitwise-identical to the serial run"
    );
    println!("pooled replay == serial ingest_all, bitwise");

    session.close();
    pool.join();
    Ok(())
}
