//! CSV round trip: export a synthetic stream in the original
//! SliceNStitch release's event format, read it back, and decompose —
//! the drop-in path for running this library on the paper's real traces.
//!
//! ```bash
//! cargo run --release --example csv_pipeline
//! ```

use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig, SnsEngine};
use slicenstitch::data::csvio::{read_stream, write_stream};
use slicenstitch::data::{generate, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = GeneratorConfig {
        base_dims: vec![30, 30],
        events: 5_000,
        duration: 10_000,
        day_ticks: 2_000,
        ..Default::default()
    };
    let stream = generate(&config);

    // Write to a temp CSV, read it back.
    let path = std::env::temp_dir().join("slicenstitch_events.csv");
    write_stream(std::fs::File::create(&path)?, &stream)?;
    let size = std::fs::metadata(&path)?.len();
    let back = read_stream(std::fs::File::open(&path)?)?;
    println!(
        "wrote {} events ({} bytes) to {} and read them back",
        back.len(),
        size,
        path.display()
    );
    assert_eq!(back, stream, "CSV round trip must be lossless");

    // Decompose the re-loaded stream.
    let sns = SnsConfig { rank: 8, ..Default::default() };
    let mut engine = SnsEngine::new(&[30, 30], 5, 500, AlgorithmKind::PlusVec, &sns);
    let cut = back.partition_point(|t| t.time <= 2_500);
    for tu in &back[..cut] {
        engine.prefill(*tu)?;
    }
    engine.warm_start(&AlsOptions::default());
    for tu in &back[cut..] {
        engine.ingest(*tu)?;
    }
    println!("decomposed: final fitness {:.4}", engine.fitness());
    std::fs::remove_file(&path).ok();
    Ok(())
}
