//! Pool-wide durability: checkpoint a running fleet to disk, crash,
//! recover, and verify the recovered fleet is byte-identical to one
//! that never crashed.
//!
//! ```bash
//! cargo run --release --example checkpoint_recover
//! ```
//!
//! Three acts:
//!
//! 1. **Checkpoint** — a pool serving every engine family (continuous
//!    SNS⁺_RND, periodic CP-stream, and an anomaly-decorated engine)
//!    ingests half a trace, then `checkpoint_pool` drains a consistent
//!    snapshot set into a `CheckpointStore`: one versioned binary file
//!    per stream plus a manifest.
//! 2. **Crash** — the pool is dropped mid-trace. No clean close, no
//!    goodbye; everything in memory is gone.
//! 3. **Recovery** — a brand-new pool rebuilds every stream from disk
//!    with `recover_pool`, finishes the trace, and the final serialized
//!    state of every stream is compared **byte for byte** against an
//!    uninterrupted reference run.

use slicenstitch::codec::store::{checkpoint_pool, recover_pool, CheckpointStore};
use slicenstitch::codec::to_bytes;
use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig};
use slicenstitch::data::{generate, GeneratorConfig};
use slicenstitch::runtime::{
    AnomalyConfig, BaselineKind, EnginePool, EngineSpec, PoolConfig, StreamSession,
};
use slicenstitch::stream::StreamTuple;
use std::collections::HashMap;

const BASE_DIMS: [usize; 2] = [20, 16];
const W: usize = 4;
const T: u64 = 100;
const BASE_SEED: u64 = 0xd15c;

fn fleet() -> Vec<(u64, EngineSpec)> {
    let config = SnsConfig { rank: 4, theta: 10, ..Default::default() };
    vec![
        (0, EngineSpec::sns(&BASE_DIMS, W, T, AlgorithmKind::PlusRnd, &config)),
        (
            1,
            EngineSpec::baseline(
                &BASE_DIMS,
                W,
                T,
                4,
                BaselineKind::CpStream { decay: 0.99, iters: 2 },
            ),
        ),
        (
            2,
            EngineSpec::sns(&BASE_DIMS, W, T, AlgorithmKind::PlusVec, &config)
                .with_anomaly(AnomalyConfig::default()),
        ),
    ]
}

fn trace() -> Vec<StreamTuple> {
    generate(&GeneratorConfig {
        base_dims: BASE_DIMS.to_vec(),
        n_components: 3,
        events: 4_000,
        duration: 6 * W as u64 * T,
        day_ticks: 300,
        seed: 0x7ace,
        ..Default::default()
    })
}

fn pool() -> EnginePool {
    EnginePool::new(PoolConfig {
        shards: 3,
        base_seed: BASE_SEED,
        queue_depth: 64,
        ..Default::default()
    })
}

fn drive(sessions: &mut [StreamSession], tuples: &[StreamTuple], warm: bool) {
    let cut = tuples.partition_point(|t| t.time <= W as u64 * T);
    for session in sessions.iter_mut() {
        if warm {
            let _ = session.prefill_batch(&tuples[..cut]).expect("chronological");
            let _ = session.warm_start(&AlsOptions { max_iters: 8, ..Default::default() }).unwrap();
        }
        for chunk in tuples[if warm { cut } else { 0 }..].chunks(128) {
            let _ = session.ingest_batch(chunk).expect("chronological");
        }
    }
}

fn main() {
    let tuples = trace();
    let half = tuples.len() / 2;
    let dir = std::env::temp_dir().join("sns-example-checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::create(&dir).expect("checkpoint dir");

    // Reference: the run that never crashes.
    let reference = pool();
    let mut sessions: Vec<StreamSession> =
        fleet().into_iter().map(|(id, spec)| reference.open(id, spec).unwrap()).collect();
    drive(&mut sessions, &tuples, true);
    let mut want: HashMap<u64, Vec<u8>> = HashMap::new();
    for (id, snapshot) in reference.checkpoint_all() {
        want.insert(id, to_bytes(&snapshot.expect("every family captures")));
    }
    drop(sessions);
    reference.join();

    // Act 1: serve half the trace, checkpoint to disk.
    let doomed = pool();
    let mut sessions: Vec<StreamSession> =
        fleet().into_iter().map(|(id, spec)| doomed.open(id, spec).unwrap()).collect();
    drive(&mut sessions, &tuples[..half], true);
    let entries = checkpoint_pool(&doomed, &store).expect("checkpoint");
    println!("checkpointed {} streams into {}", entries.len(), dir.display());
    for e in &entries {
        println!("  stream {} -> {} ({} bytes, crc {:016x})", e.stream_id, e.file, e.bytes, e.crc);
    }

    // Act 2: the crash. Sessions and pool vanish mid-trace.
    drop(sessions);
    drop(doomed);
    println!("pool dropped mid-trace (simulated crash)");

    // Act 3: recover into a brand-new pool and finish the trace.
    let revived = pool();
    let mut recovered = recover_pool(&revived, &store).expect("recover");
    println!("recovered {} streams from the manifest", recovered.len());
    drive(&mut recovered, &tuples[half..], false);

    let mut all_identical = true;
    for session in &mut recovered {
        let report = session.report().unwrap();
        let bytes = to_bytes(&session.snapshot().unwrap());
        let identical = want.get(&report.stream_id).is_some_and(|w| *w == bytes);
        all_identical &= identical;
        println!(
            "  stream {} ({}): fitness {:.4}, {} updates, {} snapshot bytes — {}",
            report.stream_id,
            report.name,
            report.fitness,
            report.updates_applied,
            bytes.len(),
            if identical { "byte-identical to the uninterrupted run" } else { "DIVERGED" },
        );
        assert!(identical, "recovered stream {} diverged", report.stream_id);
    }
    assert!(all_identical);
    println!("crash recovery is bitwise-exact across every engine family");
    let _ = std::fs::remove_dir_all(&dir);
}
