//! Quickstart: continuous CP decomposition of a synthetic traffic stream.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a SliceNStitch engine (SNS⁺_RND — the paper's recommended
//! fast variant), feeds it a synthetic source×destination traffic stream,
//! and prints the fitness of the continuously maintained factorization.

use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig, SnsEngine};
use slicenstitch::data::{generate, GeneratorConfig};

fn main() {
    // A stream of (source, destination, count) events over 60 sources and
    // 50 destinations, with latent community structure.
    let config = GeneratorConfig {
        base_dims: vec![60, 50],
        n_components: 5,
        events: 20_000,
        duration: 60_000,
        zipf_exponent: 1.5,
        noise_fraction: 0.1,
        day_ticks: 10_000,
        ..Default::default()
    };
    let stream = generate(&config);
    println!("generated {} events over {} ticks", stream.len(), config.duration);

    // Tensor window: W = 8 units of T = 1000 ticks each; rank-10 CPD
    // updated on every single event.
    let sns = SnsConfig { rank: 10, theta: 20, eta: 1000.0, ..Default::default() };
    let mut engine = SnsEngine::new(&[60, 50], 8, 1000, AlgorithmKind::PlusRnd, &sns);

    // Paper protocol: fill the first window, then initialize with ALS.
    let prefill_until = 8 * 1000;
    let cut = stream.partition_point(|t| t.time <= prefill_until);
    for tu in &stream[..cut] {
        engine.prefill(*tu).expect("chronological stream");
    }
    let warm = engine.warm_start(&AlsOptions::default());
    println!("ALS warm start: fitness {:.4} after {} sweeps", warm.fitness, warm.iters);

    // Stream the rest; the factorization follows every event.
    let started = std::time::Instant::now();
    for tu in &stream[cut..] {
        engine.ingest(*tu).expect("chronological stream");
    }
    let elapsed = started.elapsed();
    println!(
        "processed {} tuples ({} window events) in {:.2?} — {:.1} µs/event",
        stream.len() - cut,
        engine.updates_applied(),
        elapsed,
        elapsed.as_secs_f64() * 1e6 / engine.updates_applied() as f64
    );
    println!("final fitness on the live window: {:.4}", engine.fitness());
    println!(
        "model parameters: {} (R·(ΣN_m + W) — constant for the whole stream)",
        engine.num_parameters()
    );
}
