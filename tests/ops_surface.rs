//! End-to-end tests of the operability surface (`sns-ops` wired through
//! the pool): lifecycle events on the bus, per-stream metrics and
//! latency histograms, dead-letter quarantine with deterministic
//! replay, and the typed backpressure contract.

use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig};
use slicenstitch::data::{generate, GeneratorConfig};
use slicenstitch::ops::{BusItem, QuarantinedOp};
use slicenstitch::runtime::pool::stream_seed;
use slicenstitch::runtime::{
    ChaosConfig, EnginePool, EngineSnapshot, EngineSpec, PoolConfig, PoolEvent, QuarantinePolicy,
    SnsError, POISON_VALUE,
};
use slicenstitch::stream::StreamTuple;
use std::time::Duration;

const DIMS: [usize; 2] = [4, 3];
const W: usize = 3;
const T: u64 = 5;
const BASE_SEED: u64 = 0x0b5;

fn sns_spec() -> EngineSpec {
    EngineSpec::sns(
        &DIMS,
        W,
        T,
        AlgorithmKind::PlusRnd,
        &SnsConfig { rank: 2, theta: 10, ..Default::default() },
    )
}

fn trace(seed: u64, events: usize) -> Vec<StreamTuple> {
    generate(&GeneratorConfig {
        base_dims: DIMS.to_vec(),
        n_components: 2,
        events,
        duration: 10 * W as u64 * T,
        zipf_exponent: 1.2,
        noise_fraction: 0.1,
        day_ticks: 50,
        seed,
        ..Default::default()
    })
}

fn cut(trace: &[StreamTuple]) -> usize {
    trace.partition_point(|t| t.time <= W as u64 * T)
}

fn als() -> AlsOptions {
    AlsOptions { max_iters: 4, tol: 1e-3, ..Default::default() }
}

/// Drives the full trace in batches, tolerating quarantine-class
/// rejections; returns how many batches were rejected.
fn drive(
    session: &mut slicenstitch::runtime::StreamSession,
    trace: &[StreamTuple],
) -> Result<usize, SnsError> {
    let c = cut(trace);
    for chunk in trace[..c].chunks(20) {
        let _ = session.prefill_batch(chunk)?;
    }
    let _ = session.warm_start(&als())?;
    let mut rejected = 0;
    for chunk in trace[c..].chunks(20) {
        match session.ingest_batch(chunk) {
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.root_cause(),
                    SnsError::EnginePanicked { .. } | SnsError::StreamQuarantined { .. }
                ) =>
            {
                rejected += 1;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(rejected)
}

/// A panicking batch quarantines the stream instead of killing it, the
/// healthy co-tenant never notices, the repaired letters replay to a
/// state byte-identical to a serial run over the repaired trace, and
/// the whole story is visible on the bus and in the metrics dump.
#[test]
fn quarantine_replay_is_bitwise_and_observable() {
    let pool = EnginePool::new(PoolConfig {
        shards: 2,
        base_seed: BASE_SEED,
        queue_depth: 32,
        ..Default::default()
    });
    let mut sub = pool.ops().subscribe();

    let chaos_spec = sns_spec().with_chaos(ChaosConfig::default());
    let mut poisoned = trace(1, 300);
    let c = cut(&poisoned);
    let live = poisoned.len() - c;
    poisoned[c + live / 2].value = POISON_VALUE;
    let healthy_trace = trace(2, 300);

    let mut chaos = pool.open(1, chaos_spec.clone()).unwrap();
    let mut healthy = pool.open(2, sns_spec()).unwrap();
    let rejected = drive(&mut chaos, &poisoned).unwrap();
    assert!(rejected >= 1, "the poison batch must be rejected");
    assert_eq!(drive(&mut healthy, &healthy_trace).unwrap(), 0);

    // The DLQ holds the poison batch plus everything diverted behind it.
    let letters_pending = pool.ops().dlq().pending(1);
    assert_eq!(letters_pending, rejected);
    assert_eq!(pool.ops().dlq().pending(2), 0);
    let chaos_report = chaos.report().unwrap();
    assert!(chaos_report.error.is_some(), "sticky error until replay");

    // Repair (poison -> 1.0) and replay; letters carry full context.
    let replayed = chaos
        .replay_quarantined(|letter| {
            assert_eq!(letter.stream_id, 1);
            assert!(matches!(letter.op, QuarantinedOp::Ingest));
            assert!(!letter.tuples.is_empty());
            for t in &mut letter.tuples {
                if t.value.to_bits() == POISON_VALUE.to_bits() {
                    t.value = 1.0;
                }
            }
        })
        .unwrap();
    assert_eq!(replayed, letters_pending);
    assert_eq!(pool.ops().dlq().pending(1), 0);
    assert!(chaos.report().unwrap().error.is_none(), "replay clears the slot");

    // Byte-identity: pooled final state == serial run over the repaired
    // trace with the same derived seed.
    for (id, spec, tr) in [(1u64, chaos_spec, &poisoned), (2, sns_spec(), &healthy_trace)] {
        let mut repaired = tr.clone();
        for t in &mut repaired {
            if t.value.to_bits() == POISON_VALUE.to_bits() {
                t.value = 1.0;
            }
        }
        let mut engine = spec.build(stream_seed(BASE_SEED, id));
        let cc = cut(&repaired);
        engine.prefill_all(&repaired[..cc]).unwrap();
        engine.warm_start(&als());
        engine.ingest_all(&repaired[cc..]).unwrap();
        let serial = slicenstitch::codec::to_bytes(&EngineSnapshot {
            stream_id: id,
            spec: spec.clone(),
            seed: spec.effective_seed(stream_seed(BASE_SEED, id)),
            wal_seq: 0,
            state: engine.snapshot().unwrap(),
        });
        let session = if id == 1 { &mut chaos } else { &mut healthy };
        let pooled = slicenstitch::codec::to_bytes(&session.snapshot().unwrap());
        assert_eq!(pooled, serial, "stream {id} diverged from its serial reference");
    }

    // Checkpoint for the CheckpointCommitted event, then close.
    for (_, snapshot) in pool.checkpoint_all() {
        let _ = snapshot.unwrap();
    }
    let dump = pool.ops().dump();
    let stream1 = pool.ops().metrics().stream(1);
    drop(chaos);
    drop(healthy);
    pool.join();

    let (mut opened, mut evicted, mut quarantined, mut checkpoints) = (0, 0, 0, 0);
    for item in sub.drain() {
        if let BusItem::Event(e) = item {
            match *e {
                PoolEvent::StreamOpened { .. } => opened += 1,
                PoolEvent::StreamEvicted { .. } => evicted += 1,
                PoolEvent::TupleQuarantined { .. } => quarantined += 1,
                PoolEvent::CheckpointCommitted { streams } => {
                    checkpoints += 1;
                    assert_eq!(streams, 2);
                }
                _ => {}
            }
        }
    }
    assert_eq!(opened, 2);
    assert_eq!(evicted, 2);
    assert_eq!(quarantined, rejected as u64);
    assert_eq!(checkpoints, 1);

    // Metrics dump sanity: both streams, quarantine counters, dlq section.
    for key in ["\"stream_id\":1", "\"stream_id\":2", "\"dlq\"", "\"events\"", "\"p99_us\""] {
        assert!(dump.contains(key), "dump missing {key}: {dump}");
    }
    assert!(stream1.quarantined.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    assert!(stream1.replayed.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    assert!(stream1.latency.snapshot().count > 0, "receipts must feed the histogram");
}

/// With `QuarantinePolicy::Disabled` there is no pre-batch capture: a
/// panic still leaves a letter for the post-mortem, but the slot goes
/// dark and keeps reporting the panic instead of serving.
#[test]
fn disabled_policy_goes_dark_but_records_the_letter() {
    let pool = EnginePool::new(PoolConfig {
        shards: 1,
        base_seed: BASE_SEED,
        queue_depth: 16,
        quarantine: QuarantinePolicy::Disabled,
        ..Default::default()
    });
    let mut session = pool.open(7, sns_spec().with_chaos(ChaosConfig::default())).unwrap();
    let mut tr = trace(7, 200);
    let c = cut(&tr);
    tr[c + 5].value = POISON_VALUE;
    for chunk in tr[..c].chunks(20) {
        let _ = session.prefill_batch(chunk).unwrap();
    }
    let _ = session.warm_start(&als()).unwrap();
    let err = session.ingest_batch(&tr[c..c + 20]).unwrap_err();
    assert!(matches!(err, SnsError::EnginePanicked { stream_id: 7, .. }));
    // The slot is dark: even a clean batch now reports the panic.
    let err = session.ingest_batch(&tr[c + 20..c + 40]).unwrap_err();
    assert!(matches!(err.root_cause(), SnsError::EnginePanicked { .. }));
    assert_eq!(pool.ops().dlq().pending(7), 1, "the letter is still recorded");
    // Replay cannot resurrect a dark slot; the letter is requeued.
    let res = session.replay_quarantined(|_| {});
    assert!(res.is_err());
    assert_eq!(pool.ops().dlq().pending(7), 1, "failed replay requeues the letter");
    drop(session);
    pool.join();
}

/// `SnsError::Backpressure` carries the shard, the live queue depth,
/// and the configured capacity; the blocking fallback publishes
/// onset/relief events when somebody listens.
#[test]
fn backpressure_carries_context_and_publishes_onset_relief() {
    let pool = EnginePool::new(PoolConfig {
        shards: 1,
        base_seed: BASE_SEED,
        queue_depth: 2,
        ..Default::default()
    });
    let mut sub = pool.ops().subscribe();
    // A chaos delay makes the worker slow without ever poisoning.
    let spec = sns_spec().with_chaos(ChaosConfig { delay_micros: 500, ..Default::default() });
    let mut session = pool.open(3, spec).unwrap();
    let tr = trace(3, 250);
    let c = cut(&tr);
    let shard = session.shard();
    let mut typed = 0;
    for chunk in tr[c..].chunks(8) {
        match session.try_ingest_batch(chunk) {
            Ok(_) => {}
            Err(SnsError::Backpressure { stream_id, shard: s, depth, capacity }) => {
                assert_eq!(stream_id, 3);
                assert_eq!(s, shard);
                assert_eq!(capacity, 2);
                assert!(depth <= capacity);
                typed += 1;
                let _ = session.ingest_batch(chunk).unwrap();
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    while let Some(receipt) = session.recv_receipt() {
        let receipt = receipt.unwrap();
        assert!(receipt.latency > Duration::ZERO, "receipts carry enqueue->ack latency");
    }
    assert!(typed > 0, "the tiny queue must reject at least once");
    let p99 = pool.ops().metrics().stream(3).latency.snapshot().p99_us;
    drop(session);
    pool.join();
    let (mut onsets, mut reliefs) = (0, 0);
    for item in sub.drain() {
        if let BusItem::Event(e) = item {
            match *e {
                PoolEvent::BackpressureOnset { stream_id: 3, capacity: 2, .. } => onsets += 1,
                PoolEvent::BackpressureRelief { stream_id: 3, .. } => reliefs += 1,
                _ => {}
            }
        }
    }
    assert!(onsets > 0 && reliefs > 0, "onset/relief must reach the bus");
    assert!(p99 > 0.0, "slow engine latency must show in the histogram");
}
