//! Session-based `EnginePool` contract:
//!
//! - pooled **batched** ingestion is bitwise-identical to serial
//!   per-tuple ingestion of the same engine specs with the same derived
//!   seeds (property-tested over random streams and batch shapes);
//! - snapshot → restore → continue is bitwise-identical to a run that
//!   never migrated (within a pool, and across pools);
//! - bounded shard queues apply flow control without deadlocking when
//!   producers outrun a slow shard, and non-blocking submits surface
//!   typed backpressure;
//! - open/restore routing is per-stream: a saturated unrelated shard
//!   cannot stall an open, and racing `open`/`restore` of one id always
//!   leaves exactly one live session (regression tests for the PR-2
//!   blocking-`Evict`-broadcast hazards).

use proptest::prelude::*;
use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig};
use slicenstitch::data::{generate, GeneratorConfig};
use slicenstitch::runtime::pool::stream_seed;
use slicenstitch::runtime::{
    BaselineKind, EnginePool, EngineSpec, PoolConfig, SnsError, StreamSession,
};
use slicenstitch::stream::StreamTuple;

const BASE_DIMS: [usize; 2] = [12, 10];
const W: usize = 4;
const T: u64 = 50;
const BASE_SEED: u64 = 0x900d;

/// Streams 0..N: even ids run a continuous SNS engine, odd ids a
/// periodic OnlineSCP baseline — the pool serves both families at once.
fn tenant_spec(id: u64) -> EngineSpec {
    if id % 2 == 0 {
        let config = SnsConfig { rank: 3, theta: 10, ..Default::default() };
        EngineSpec::sns(&BASE_DIMS, W, T, AlgorithmKind::PlusRnd, &config)
    } else {
        EngineSpec::baseline(&BASE_DIMS, W, T, 3, BaselineKind::OnlineScp)
    }
}

fn tuples_for(id: u64) -> Vec<StreamTuple> {
    generate(&GeneratorConfig {
        base_dims: BASE_DIMS.to_vec(),
        n_components: 3,
        events: 900,
        duration: 5 * W as u64 * T,
        day_ticks: 40,
        seed: 0xfeed + id,
        ..Default::default()
    })
}

fn als_opts() -> AlsOptions {
    AlsOptions { max_iters: 15, tol: 1e-4, ..Default::default() }
}

/// Serial reference: one engine per stream, full protocol, per-tuple
/// ingestion, same spec, same derived seed.
fn run_serial(id: u64) -> (String, f64, u64) {
    let mut engine = tenant_spec(id).build(stream_seed(BASE_SEED, id));
    let tuples = tuples_for(id);
    let cut = tuples.partition_point(|t| t.time <= W as u64 * T);
    engine.prefill_all(&tuples[..cut]).unwrap();
    engine.warm_start(&als_opts());
    for tu in &tuples[cut..] {
        engine.ingest(*tu).unwrap();
    }
    engine.advance_to(6 * W as u64 * T);
    (engine.name(), engine.fitness(), engine.updates_applied())
}

#[test]
fn pooled_batched_streams_match_serial_execution_bitwise() {
    let ids: Vec<u64> = (0..6).collect();
    let serial: Vec<(String, f64, u64)> = ids.iter().map(|&id| run_serial(id)).collect();

    let pool = EnginePool::new(PoolConfig {
        shards: 3,
        base_seed: BASE_SEED,
        queue_depth: 64,
        ..Default::default()
    });
    let mut sessions: Vec<StreamSession> =
        ids.iter().map(|&id| pool.open(id, tenant_spec(id)).unwrap()).collect();
    let streams: Vec<Vec<StreamTuple>> = ids.iter().map(|&id| tuples_for(id)).collect();
    let cuts: Vec<usize> =
        streams.iter().map(|s| s.partition_point(|t| t.time <= W as u64 * T)).collect();

    // Interleave batches across streams so shards genuinely run
    // concurrently rather than one stream at a time.
    let max_prefill = cuts.iter().copied().max().unwrap();
    for lo in (0..max_prefill).step_by(40) {
        for (session, (s, &cut)) in sessions.iter_mut().zip(streams.iter().zip(&cuts)) {
            if lo < cut {
                let receipt = session.prefill_batch(&s[lo..(lo + 40).min(cut)]).unwrap();
                assert_eq!(receipt.updates, 0, "prefill must not update factors");
            }
        }
    }
    for session in &mut sessions {
        let _ = session.warm_start(&als_opts()).unwrap();
    }
    let max_live = streams.iter().zip(&cuts).map(|(s, &c)| s.len() - c).max().unwrap();
    for off in (0..max_live).step_by(40) {
        for (session, (s, &cut)) in sessions.iter_mut().zip(streams.iter().zip(&cuts)) {
            let lo = cut + off;
            if lo < s.len() {
                let _ = session.ingest_batch(&s[lo..(lo + 40).min(s.len())]).unwrap();
            }
        }
    }
    for session in &mut sessions {
        let receipt = session.advance_to(6 * W as u64 * T).unwrap();
        assert_eq!(receipt.accepted, 0);
    }

    for (session, (name, fitness, updates)) in sessions.iter_mut().zip(&serial) {
        let report = session.report().unwrap();
        let id = report.stream_id;
        assert_eq!(report.error, None, "stream {id} errored");
        assert_eq!(&report.name, name, "stream {id} engine family");
        assert_eq!(
            report.fitness.to_bits(),
            fitness.to_bits(),
            "stream {id}: pooled fitness {} vs serial {fitness}",
            report.fitness
        );
        assert_eq!(report.updates_applied, *updates, "stream {id} update count");
        assert!(!report.diverged, "stream {id} diverged");
    }
    drop(sessions);
    pool.join();
}

#[test]
fn pool_serves_more_streams_than_shards() {
    let pool = EnginePool::new(PoolConfig {
        shards: 2,
        base_seed: 7,
        queue_depth: 32,
        ..Default::default()
    });
    let ids: Vec<u64> = (100..116).collect();
    let mut sessions: Vec<StreamSession> =
        ids.iter().map(|&id| pool.open(id, tenant_spec(id)).unwrap()).collect();
    for (session, &id) in sessions.iter_mut().zip(&ids) {
        // Spread arrivals across several periods so the periodic
        // engines (odd ids) complete window slides too.
        let tuples: Vec<StreamTuple> = (0..40u64)
            .map(|t| StreamTuple::new([(t % 12) as u32, ((t + id) % 10) as u32], 1.0, t * 10))
            .collect();
        let receipt = session.ingest_batch(&tuples).unwrap();
        assert_eq!(receipt.accepted, 40);
    }
    for session in &mut sessions {
        let r = session.report().unwrap();
        assert_eq!(r.error, None);
        assert!(r.updates_applied > 0, "stream {} applied no updates", r.stream_id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pooled batched ingestion ≡ serial per-tuple ingestion, bitwise at
    /// every checkpoint, for arbitrary streams, batch sizes, shard
    /// counts, and both engine families.
    #[test]
    fn pooled_batched_equals_serial_per_tuple(
        stream_seed_offset in 0u64..1_000,
        batch in 1usize..70,
        shards in 1usize..5,
        continuous in (0u8..2).prop_map(|v| v == 0),
    ) {
        let id = stream_seed_offset; // doubles as the stream id
        let spec = if continuous {
            tenant_spec(0) // even ⇒ SNS⁺_RND
        } else {
            tenant_spec(1) // odd ⇒ OnlineSCP
        };
        let tuples = generate(&GeneratorConfig {
            base_dims: BASE_DIMS.to_vec(),
            n_components: 2,
            events: 300,
            duration: 4 * W as u64 * T,
            day_ticks: 40,
            seed: 0xabc0 + stream_seed_offset,
            ..Default::default()
        });

        // Serial per-tuple reference with the pool's derived seed,
        // checkpointing after every `3 * batch` tuples.
        let mut engine = spec.clone().build(stream_seed(BASE_SEED, id));
        let mut serial_marks = Vec::new();
        for (i, tu) in tuples.iter().enumerate() {
            engine.ingest(*tu).unwrap();
            if (i + 1) % (3 * batch) == 0 {
                serial_marks.push((engine.fitness().to_bits(), engine.updates_applied()));
            }
        }
        serial_marks.push((engine.fitness().to_bits(), engine.updates_applied()));

        // Pooled batched run, same checkpoints via `report()`.
        let pool = EnginePool::new(PoolConfig { shards, base_seed: BASE_SEED, queue_depth: 16, ..Default::default() });
        let mut session = pool.open(id, spec).unwrap();
        let mut pooled_marks = Vec::new();
        let mut done = 0usize;
        for chunk in tuples.chunks(batch) {
            let _ = session.ingest_batch(chunk).unwrap();
            done += chunk.len();
            if done % (3 * batch) == 0 {
                let r = session.report().unwrap();
                pooled_marks.push((r.fitness.to_bits(), r.updates_applied));
            }
        }
        let r = session.report().unwrap();
        prop_assert_eq!(r.error, None);
        pooled_marks.push((r.fitness.to_bits(), r.updates_applied));

        prop_assert_eq!(serial_marks, pooled_marks);
        drop(session);
        pool.join();
    }

    /// Snapshot → restore → continue is bitwise-identical to a run that
    /// never migrated, for arbitrary migration points and target shards.
    #[test]
    fn snapshot_restore_round_trip_is_bitwise(
        case_seed in 0u64..1_000,
        cut_per_mille in 1usize..1_000,
        target_shard in 0usize..3,
        cross_pool in (0u8..2).prop_map(|v| v == 0),
    ) {
        let id = 0xb0b + case_seed;
        let spec = tenant_spec(0);
        let tuples = generate(&GeneratorConfig {
            base_dims: BASE_DIMS.to_vec(),
            n_components: 2,
            events: 240,
            duration: 4 * W as u64 * T,
            day_ticks: 40,
            seed: 0xdead + case_seed,
            ..Default::default()
        });
        let cut = (tuples.len() * cut_per_mille / 1_000).max(1).min(tuples.len() - 1);

        // Unmigrated reference.
        let mut reference = spec.clone().build(stream_seed(BASE_SEED, id));
        for tu in &tuples {
            reference.ingest(*tu).unwrap();
        }

        // Migrated run: ingest to `cut`, snapshot, close, restore on an
        // explicit shard (of this pool or a brand-new one), continue.
        let pool = EnginePool::new(PoolConfig { shards: 3, base_seed: BASE_SEED, queue_depth: 16, ..Default::default() });
        let mut session = pool.open(id, spec).unwrap();
        let _ = session.ingest_batch(&tuples[..cut]).unwrap();
        let snapshot = session.snapshot().unwrap();
        prop_assert_eq!(snapshot.stream_id, id);
        prop_assert_eq!(snapshot.seed, stream_seed(BASE_SEED, id));
        session.close();

        let other_pool;
        let restored_into = if cross_pool {
            other_pool = EnginePool::new(PoolConfig {
                shards: 3,
                base_seed: 0x0ddba11, // irrelevant: the state carries its own seed history
                queue_depth: 16,
                ..Default::default()
            });
            &other_pool
        } else {
            &pool
        };
        let mut migrated = restored_into.restore(snapshot, target_shard).unwrap();
        prop_assert_eq!(migrated.shard(), target_shard);
        let _ = migrated.ingest_batch(&tuples[cut..]).unwrap();
        let report = migrated.report().unwrap();
        prop_assert_eq!(report.error, None);
        prop_assert_eq!(report.fitness.to_bits(), reference.fitness().to_bits());
        prop_assert_eq!(report.updates_applied, reference.updates_applied());
    }
}

/// Smallest stream id served by the given shard.
fn id_on_shard(pool: &EnginePool, shard: usize) -> u64 {
    (0u64..).find(|&id| pool.shard_of(id) == shard).expect("some id hashes to every shard")
}

/// Regression (PR-2 hazard, fixed in PR-4): `open`/`restore` used to
/// broadcast a *blocking* `Evict` to every shard, so an open of a fresh
/// stream stalled behind any saturated shard. With the stream→shard
/// ownership map, an open only ever touches the target shard (and the
/// one shard that owns the id, if different) — a saturated unrelated
/// shard is irrelevant.
#[test]
fn open_is_not_stalled_by_a_saturated_unrelated_shard() {
    // SNS_MAT runs one full ALS sweep per event: deliberately slow.
    let slow_spec = EngineSpec::sns(
        &[32, 32],
        8,
        50,
        AlgorithmKind::Mat,
        &SnsConfig { rank: 16, ..Default::default() },
    );
    let pool = EnginePool::new(PoolConfig {
        shards: 2,
        base_seed: 1,
        queue_depth: 1,
        ..Default::default()
    });
    let slow_id = id_on_shard(&pool, 0);
    let mut slow = pool.open(slow_id, slow_spec).unwrap();
    let tuples: Vec<StreamTuple> = (0..1_800u64)
        .map(|t| StreamTuple::new([(t % 32) as u32, ((t * 7) % 32) as u32], 1.0, t / 4))
        .collect();

    // Calibrate how long shard 0 takes to chew one batch (blocking call).
    let start = std::time::Instant::now();
    let _ = slow.ingest_batch(&tuples[..600]).unwrap();
    let batch_time = start.elapsed();

    // Saturate shard 0: two pipelined batches (retrying past transient
    // backpressure) leave one batch *parked in the depth-1 queue* while
    // the worker chews the other — the queue stays full for about one
    // whole batch time from here.
    for chunk in tuples[600..].chunks(600) {
        loop {
            match slow.try_ingest_batch(chunk) {
                Ok(_) => break,
                Err(SnsError::Backpressure { .. }) => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    // Shard 0 now has ≳ one full batch of queued work. Opening a stream
    // on shard 1 must not wait for any of it.
    let other_id = id_on_shard(&pool, 1);
    let start = std::time::Instant::now();
    let mut fresh = pool.open(other_id, tenant_spec(0)).unwrap();
    let open_time = start.elapsed();
    assert_eq!(fresh.shard(), 1);
    assert!(
        open_time < batch_time / 2,
        "open took {open_time:?} while an unrelated shard was saturated \
         (one slow batch takes {batch_time:?}) — evict broadcast stall?"
    );
    let _ = fresh.ingest_batch(&tuples_for(0)[..40]).unwrap();
    assert_eq!(fresh.report().unwrap().error, None);
    while let Some(receipt) = slow.recv_receipt() {
        let _ = receipt.unwrap();
    }
    drop((slow, fresh));
    pool.join();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Regression (PR-2 hazard, fixed in PR-4): racing `open` and
    /// `restore` of the same stream id used to interleave their evict
    /// broadcasts so the id could end up live on two shards at once.
    /// Ownership claims are now atomic per stream: whatever the
    /// interleaving, exactly one of the two sessions survives.
    #[test]
    fn racing_open_and_restore_leave_exactly_one_live_session(
        case_seed in 0u64..1_000,
        shard_offset in 1usize..3,
        stagger_us in 0u64..50,
    ) {
        let id = 0xace + case_seed;
        let pool = EnginePool::new(PoolConfig { shards: 3, base_seed: case_seed, queue_depth: 8, ..Default::default() });
        let tuples = tuples_for(id);

        // Seed a snapshot to restore from, then close the seeding session.
        let mut seeded = pool.open(id, tenant_spec(0)).unwrap();
        let _ = seeded.ingest_batch(&tuples[..40]).unwrap();
        let snapshot = seeded.snapshot().unwrap();
        seeded.close();
        // Restore deliberately targets a different shard than open's hash
        // shard — the cross-shard race the broadcast version lost.
        let target = (pool.shard_of(id) + shard_offset) % pool.shards();

        let barrier = std::sync::Barrier::new(2);
        let (opened, restored) = std::thread::scope(|scope| {
            let open_handle = scope.spawn(|| {
                barrier.wait();
                pool.open(id, tenant_spec(0))
            });
            let restore_handle = scope.spawn(|| {
                barrier.wait();
                std::thread::sleep(std::time::Duration::from_micros(stagger_us));
                pool.restore(snapshot, target)
            });
            (open_handle.join().unwrap(), restore_handle.join().unwrap())
        });

        let mut live = 0;
        for session in [opened, restored] {
            let mut session = session.unwrap();
            if let Ok(report) = session.report() {
                prop_assert_eq!(report.error, None);
                live += 1;
                // The survivor must still serve the stream.
                let _ = session.ingest_batch(&tuples[40..60]).unwrap();
            }
        }
        prop_assert_eq!(live, 1, "stream {} live on {} sessions", id, live);
        pool.join();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Worker-side batch coalescing (PR 10) must be invisible: a
    /// pipelined run keeps many batches queued ahead of the worker, so
    /// it drains and coalesces an arbitrary, scheduling-dependent
    /// number of them per group — and the result must stay bitwise
    /// identical to serial per-tuple ingestion for every engine
    /// family, including the RNG-draw-order-sensitive SNS_RND /
    /// SNS⁺_RND (coalescing must not reorder or fuse sampling draws).
    #[test]
    fn pipelined_coalesced_ingest_equals_serial_per_tuple(
        case_seed in 0u64..1_000,
        batch in 1usize..40,
        shards in 1usize..4,
        family in 0usize..6,
    ) {
        let id = case_seed;
        let config = SnsConfig { rank: 3, theta: 10, ..Default::default() };
        let spec = match family {
            0 => EngineSpec::sns(&BASE_DIMS, W, T, AlgorithmKind::Vec, &config),
            1 => EngineSpec::sns(&BASE_DIMS, W, T, AlgorithmKind::Rnd, &config),
            2 => EngineSpec::sns(&BASE_DIMS, W, T, AlgorithmKind::PlusVec, &config),
            3 => EngineSpec::sns(&BASE_DIMS, W, T, AlgorithmKind::PlusRnd, &config),
            4 => EngineSpec::sns(&BASE_DIMS, W, T, AlgorithmKind::Mat, &config),
            _ => EngineSpec::baseline(&BASE_DIMS, W, T, 3, BaselineKind::OnlineScp),
        };
        // SNS_MAT runs a full ALS sweep per event; keep its case short.
        let events = if family == 4 { 100 } else { 300 };
        let tuples = generate(&GeneratorConfig {
            base_dims: BASE_DIMS.to_vec(),
            n_components: 2,
            events,
            duration: 4 * W as u64 * T,
            day_ticks: 40,
            seed: 0x5eed0 + case_seed,
            ..Default::default()
        });

        // Serial per-tuple reference with the pool's derived seed.
        let mut engine = spec.clone().build(stream_seed(BASE_SEED, id));
        for tu in &tuples {
            engine.ingest(*tu).unwrap();
        }
        let expected = (engine.fitness().to_bits(), engine.updates_applied());

        // Pipelined pooled run: stack submissions ahead of the worker.
        let pool = EnginePool::new(PoolConfig {
            shards,
            base_seed: BASE_SEED,
            queue_depth: 32,
            ..Default::default()
        });
        let mut session = pool.open(id, spec).unwrap();
        for chunk in tuples.chunks(batch) {
            loop {
                match session.try_ingest_batch(chunk) {
                    Ok(_) => break,
                    Err(SnsError::Backpressure { .. }) => {
                        // Free one slot but keep the queue deep so the
                        // worker keeps finding batches to coalesce.
                        if let Some(r) = session.recv_receipt() {
                            let _ = r.unwrap();
                        }
                    }
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
        }
        while let Some(r) = session.recv_receipt() {
            let _ = r.unwrap();
        }
        let report = session.report().unwrap();
        prop_assert_eq!(report.error, None);
        prop_assert_eq!(
            (report.fitness.to_bits(), report.updates_applied),
            expected,
            "family {} diverged from serial under coalescing",
            family
        );
        drop(session);
        pool.join();
    }

    /// Recycled batch buffers (PR 10 freelist) must never leak tuples
    /// across streams: two streams of different engine families share
    /// one shard — hence one buffer freelist — with interleaved
    /// pipelined batches of different sizes, so every submission reuses
    /// a buffer the *other* stream just released. Both must still match
    /// their serial references bitwise.
    #[test]
    fn recycled_buffers_never_leak_tuples_across_streams(
        case_seed in 0u64..1_000,
        batch_a in 1usize..30,
        batch_b in 1usize..30,
    ) {
        let ids = [2 * case_seed, 2 * case_seed + 1]; // SNS⁺_RND + OnlineSCP
        let streams: Vec<Vec<StreamTuple>> = ids
            .iter()
            .map(|&id| {
                generate(&GeneratorConfig {
                    base_dims: BASE_DIMS.to_vec(),
                    n_components: 2,
                    events: 300,
                    duration: 4 * W as u64 * T,
                    day_ticks: 40,
                    seed: 0x1ee7 + id,
                    ..Default::default()
                })
            })
            .collect();

        let serial: Vec<(u64, u64)> = ids
            .iter()
            .zip(&streams)
            .map(|(&id, tuples)| {
                let mut engine = tenant_spec(id).build(stream_seed(BASE_SEED, id));
                for tu in tuples {
                    engine.ingest(*tu).unwrap();
                }
                (engine.fitness().to_bits(), engine.updates_applied())
            })
            .collect();

        let pool = EnginePool::new(PoolConfig {
            shards: 1, // both streams on one worker: shared freelist
            base_seed: BASE_SEED,
            queue_depth: 16,
            ..Default::default()
        });
        let mut sessions: Vec<StreamSession> =
            ids.iter().map(|&id| pool.open(id, tenant_spec(id)).unwrap()).collect();
        let batches = [batch_a, batch_b];
        let mut offs = [0usize, 0];
        while offs[0] < streams[0].len() || offs[1] < streams[1].len() {
            for k in 0..2 {
                if offs[k] >= streams[k].len() {
                    continue;
                }
                let hi = (offs[k] + batches[k]).min(streams[k].len());
                match sessions[k].try_ingest_batch(&streams[k][offs[k]..hi]) {
                    Ok(_) => offs[k] = hi,
                    Err(SnsError::Backpressure { .. }) => {
                        if let Some(r) = sessions[k].recv_receipt() {
                            let _ = r.unwrap();
                        }
                    }
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
        }
        for (session, &(fitness, updates)) in sessions.iter_mut().zip(&serial) {
            while let Some(r) = session.recv_receipt() {
                let _ = r.unwrap();
            }
            let report = session.report().unwrap();
            prop_assert_eq!(report.error, None);
            prop_assert_eq!(
                report.fitness.to_bits(),
                fitness,
                "stream {} fitness corrupted by a recycled buffer",
                report.stream_id
            );
            prop_assert_eq!(report.updates_applied, updates);
        }
        drop(sessions);
        pool.join();
    }
}

/// A producer thread hammering a deliberately slow shard (SNS_MAT: one
/// full ALS sweep per event) through a depth-2 queue must neither
/// deadlock nor drop batches: blocking submits apply flow control,
/// non-blocking submits surface typed backpressure.
#[test]
fn bounded_queue_applies_flow_control_without_deadlock() {
    let slow_spec = EngineSpec::sns(
        &BASE_DIMS,
        W,
        T,
        AlgorithmKind::Mat, // full ALS sweep per event — slow on purpose
        &SnsConfig { rank: 3, ..Default::default() },
    );
    let pool = EnginePool::new(PoolConfig {
        shards: 1,
        base_seed: 1,
        queue_depth: 2,
        ..Default::default()
    });
    let mut session = pool.open(0, slow_spec).unwrap();
    let tuples = tuples_for(0);

    let producer = std::thread::spawn(move || {
        let mut accepted = 0usize;
        let mut backpressured = 0usize;
        // Phase 1: pipelined submits — the tiny queue must push back.
        for chunk in tuples[..600].chunks(8) {
            match session.try_ingest_batch(chunk) {
                Ok(_) => {}
                Err(SnsError::Backpressure { capacity: 2, .. }) => {
                    backpressured += 1;
                    // Blocking path: waits for space instead of buffering.
                    accepted += session.ingest_batch(chunk).unwrap().accepted;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        while let Some(receipt) = session.recv_receipt() {
            accepted += receipt.unwrap().accepted;
        }
        // Phase 2: pure blocking submits outrunning the worker.
        for chunk in tuples[600..900].chunks(8) {
            accepted += session.ingest_batch(chunk).unwrap().accepted;
        }
        assert_eq!(session.in_flight(), 0);
        (session, accepted, backpressured)
    });

    let (mut session, accepted, backpressured) =
        producer.join().expect("producer must not deadlock or panic");
    assert_eq!(accepted, 900, "every submitted tuple must be acknowledged");
    assert!(
        backpressured > 0,
        "a depth-2 queue in front of SNS_MAT must reject some non-blocking submits"
    );
    let report = session.report().unwrap();
    assert_eq!(report.error, None);
    assert!(report.updates_applied >= 900);
    drop(session);
    pool.join();
}
