//! EnginePool concurrency contract: N streams sharded across worker
//! threads produce per-stream results bitwise-identical to the same N
//! engines run serially with the same derived seeds — for both engine
//! families, under interleaved ingestion and the full prefill → warm
//! start → live-stream protocol.

use slicenstitch::baselines::{BaselineEngine, OnlineScp, PeriodicCpd};
use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig, SnsEngine};
use slicenstitch::data::{generate, GeneratorConfig};
use slicenstitch::runtime::pool::stream_seed;
use slicenstitch::runtime::{EnginePool, PoolConfig, StreamingCpd};
use slicenstitch::stream::StreamTuple;

const BASE_DIMS: [usize; 2] = [12, 10];
const W: usize = 4;
const T: u64 = 50;
const BASE_SEED: u64 = 0x900d;

/// Streams 0..N: even ids run a continuous SNS engine, odd ids a
/// periodic OnlineSCP baseline — the pool serves both families at once.
fn build_engine(id: u64) -> impl FnOnce(u64) -> Box<dyn StreamingCpd> + Send + 'static {
    move |seed| {
        if id % 2 == 0 {
            let config = SnsConfig { rank: 3, theta: 10, seed, ..Default::default() };
            Box::new(SnsEngine::new(&BASE_DIMS, W, T, AlgorithmKind::PlusRnd, &config))
        } else {
            let algo: Box<dyn PeriodicCpd> =
                Box::new(OnlineScp::new(&[BASE_DIMS[0], BASE_DIMS[1], W], 3, seed));
            Box::new(BaselineEngine::new(&BASE_DIMS, W, T, algo))
        }
    }
}

fn tuples_for(id: u64) -> Vec<StreamTuple> {
    generate(&GeneratorConfig {
        base_dims: BASE_DIMS.to_vec(),
        n_components: 3,
        events: 900,
        duration: 5 * W as u64 * T,
        day_ticks: 40,
        seed: 0xfeed + id,
        ..Default::default()
    })
}

fn als_opts() -> AlsOptions {
    AlsOptions { max_iters: 15, tol: 1e-4, ..Default::default() }
}

/// Serial reference: one engine per stream, full protocol, same seeds.
fn run_serial(id: u64) -> (String, f64, u64) {
    let mut engine = build_engine(id)(stream_seed(BASE_SEED, id));
    let tuples = tuples_for(id);
    let cut = tuples.partition_point(|t| t.time <= W as u64 * T);
    engine.prefill_all(&tuples[..cut]).unwrap();
    engine.warm_start(&als_opts());
    for tu in &tuples[cut..] {
        engine.ingest(*tu).unwrap();
    }
    engine.advance_to(6 * W as u64 * T);
    (engine.name(), engine.fitness(), engine.updates_applied())
}

#[test]
fn pooled_streams_match_serial_execution_bitwise() {
    let ids: Vec<u64> = (0..6).collect();
    let serial: Vec<(String, f64, u64)> = ids.iter().map(|&id| run_serial(id)).collect();

    let pool = EnginePool::new(PoolConfig { shards: 3, base_seed: BASE_SEED });
    for &id in &ids {
        pool.open_stream(id, build_engine(id));
    }
    // Interleave commands across streams so shards genuinely run
    // concurrently rather than one stream at a time.
    let streams: Vec<Vec<StreamTuple>> = ids.iter().map(|&id| tuples_for(id)).collect();
    let cuts: Vec<usize> =
        streams.iter().map(|s| s.partition_point(|t| t.time <= W as u64 * T)).collect();
    let max_prefill = cuts.iter().copied().max().unwrap();
    for i in 0..max_prefill {
        for (&id, (s, &cut)) in ids.iter().zip(streams.iter().zip(&cuts)) {
            if i < cut {
                pool.prefill(id, s[i]);
            }
        }
    }
    for &id in &ids {
        pool.warm_start(id, &als_opts());
    }
    let max_live = streams.iter().zip(&cuts).map(|(s, &c)| s.len() - c).max().unwrap();
    for i in 0..max_live {
        for (&id, (s, &cut)) in ids.iter().zip(streams.iter().zip(&cuts)) {
            if cut + i < s.len() {
                pool.ingest(id, s[cut + i]);
            }
        }
    }
    for &id in &ids {
        pool.advance_to(id, 6 * W as u64 * T);
    }

    for (&id, (name, fitness, updates)) in ids.iter().zip(&serial) {
        let report = pool.report(id);
        assert_eq!(report.error, None, "stream {id} errored");
        assert_eq!(&report.name, name, "stream {id} engine family");
        assert_eq!(
            report.fitness.to_bits(),
            fitness.to_bits(),
            "stream {id}: pooled fitness {} vs serial {fitness}",
            report.fitness
        );
        assert_eq!(report.updates_applied, *updates, "stream {id} update count");
        assert!(!report.diverged, "stream {id} diverged");
    }
    pool.join();
}

#[test]
fn pool_serves_more_streams_than_shards() {
    let pool = EnginePool::new(PoolConfig { shards: 2, base_seed: 7 });
    let ids: Vec<u64> = (100..116).collect();
    for &id in &ids {
        pool.open_stream(id, build_engine(id));
        // Spread arrivals across several periods so the periodic
        // engines (odd ids) complete window slides too.
        for t in 0..40u64 {
            pool.ingest(
                id,
                StreamTuple::new([(t % 12) as u32, ((t + id) % 10) as u32], 1.0, t * 10),
            );
        }
    }
    for &id in &ids {
        let r = pool.report(id);
        assert_eq!(r.error, None);
        assert!(r.updates_applied > 0, "stream {id} applied no updates");
    }
}
