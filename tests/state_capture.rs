//! Universal state capture contract, end to end:
//!
//! - every engine family (continuous SNS, all four conventional
//!   baselines, the anomaly decorator) snapshots mid-stream, round-trips
//!   through the versioned **binary** codec, and continues
//!   bitwise-identically to an engine that was never frozen
//!   (property-tested over random streams and capture points);
//! - `to_bytes ∘ from_bytes` is the identity on bytes (the encoding is
//!   canonical);
//! - truncating a snapshot at every section boundary and flipping
//!   checksum bytes yield typed `SnsError::Codec` values, never panics;
//! - a checked-in golden fixture decodes and re-encodes byte-identically,
//!   so any wire-format drift without a `SCHEMA_VERSION` bump fails CI.

use proptest::prelude::*;
use slicenstitch::codec::{from_bytes, to_bytes, to_bytes_v1, SCHEMA_VERSION};
use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig};
use slicenstitch::data::{generate, GeneratorConfig};
use slicenstitch::runtime::{
    AnomalyConfig, BaselineKind, EngineSnapshot, EngineSpec, SnsError, StreamingCpd,
};
use slicenstitch::stream::StreamTuple;

const BASE_DIMS: [usize; 2] = [8, 6];
const W: usize = 4;
const T: u64 = 25;

/// One spec per engine family (plus the decorator), indexed 0..=6.
fn family_spec(family: usize) -> EngineSpec {
    let sns = |kind| {
        let config = SnsConfig { rank: 3, theta: 3, seed: 0, ..Default::default() };
        EngineSpec::sns(&BASE_DIMS, W, T, kind, &config)
    };
    match family {
        0 => sns(AlgorithmKind::PlusRnd),
        1 => sns(AlgorithmKind::Rnd),
        2 => EngineSpec::baseline(&BASE_DIMS, W, T, 3, BaselineKind::AlsPeriodic { sweeps: 1 }),
        3 => EngineSpec::baseline(&BASE_DIMS, W, T, 3, BaselineKind::OnlineScp),
        4 => EngineSpec::baseline(
            &BASE_DIMS,
            W,
            T,
            3,
            BaselineKind::CpStream { decay: 0.98, iters: 2 },
        ),
        5 => EngineSpec::baseline(&BASE_DIMS, W, T, 3, BaselineKind::NeCpd { epochs: 2 }),
        6 => sns(AlgorithmKind::PlusRnd)
            .with_anomaly(AnomalyConfig { threshold: 2.5, max_events: 64 }),
        _ => unreachable!("7 families"),
    }
}

fn family_name(family: usize) -> &'static str {
    ["SNS+_RND", "SNS_RND", "ALS(1)", "OnlineSCP", "CP-stream", "NeCPD(2)", "Anomaly(SNS+_RND)"]
        [family]
}

fn stream(seed: u64, events: usize) -> Vec<StreamTuple> {
    generate(&GeneratorConfig {
        base_dims: BASE_DIMS.to_vec(),
        n_components: 2,
        events,
        duration: 6 * W as u64 * T,
        day_ticks: 40,
        seed,
        ..Default::default()
    })
}

fn drive_protocol(engine: &mut dyn StreamingCpd, tuples: &[StreamTuple]) {
    let cut = tuples.partition_point(|t| t.time <= W as u64 * T);
    engine.prefill_all(&tuples[..cut]).unwrap();
    engine.warm_start(&AlsOptions { max_iters: 8, ..Default::default() });
    engine.ingest_all(&tuples[cut..]).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Freeze → bytes → disk-shaped round trip → thaw → continue, vs. an
    /// engine that never stopped: factors, fitness, receipts, and
    /// anomaly summaries must agree bit for bit, for every family.
    #[test]
    fn every_family_round_trips_through_bytes_bitwise(
        family in 0usize..7,
        seed in 0u64..1_000,
        capture_frac in 0.2f64..0.9,
    ) {
        let tuples = stream(0xc0de + seed, 500);
        let spec = family_spec(family);
        let mut original = spec.clone().build(seed);
        let mut cursor = spec.clone().build(seed);

        let cut = tuples.partition_point(|t| t.time <= W as u64 * T);
        let capture_at = cut + (((tuples.len() - cut) as f64) * capture_frac) as usize;
        drive_protocol(original.as_mut(), &tuples[..capture_at.max(cut + 1)]);
        drive_protocol(cursor.as_mut(), &tuples[..capture_at.max(cut + 1)]);

        // Through the full binary codec, as a cross-process restore would.
        let snapshot = EngineSnapshot {
            stream_id: family as u64,
            spec,
            seed,
            wal_seq: 0,
            state: original.snapshot().unwrap(),
        };
        let bytes = to_bytes(&snapshot);
        let decoded = from_bytes(&bytes).unwrap();
        prop_assert_eq!(to_bytes(&decoded), bytes, "encoding must be canonical");

        // v1 → v2 upgrade: the same snapshot written in the legacy
        // envelope decodes to the same engine, and re-encoding it in v2
        // matches the direct v2 bytes exactly.
        let v1 = to_bytes_v1(&snapshot).unwrap();
        let upgraded = from_bytes(&v1).unwrap();
        prop_assert_eq!(upgraded.wal_seq, 0, "v1 carries no wal_seq");
        prop_assert_eq!(to_bytes(&upgraded), bytes, "v1 upgrade must equal direct v2 encode");

        let mut restored = decoded.state.into_engine().unwrap();
        prop_assert_eq!(restored.name(), family_name(family).to_string());

        // Both continue over the tail; the never-frozen engine is the oracle.
        let tail = &tuples[capture_at.max(cut + 1)..];
        let a = cursor.ingest_all(tail).unwrap();
        let b = restored.ingest_all(tail).unwrap();
        prop_assert_eq!(a, b, "receipts diverged");
        prop_assert_eq!(cursor.advance_to(10_000), restored.advance_to(10_000));
        prop_assert_eq!(cursor.fitness().to_bits(), restored.fitness().to_bits());
        prop_assert_eq!(cursor.updates_applied(), restored.updates_applied());
        for m in 0..3 {
            prop_assert_eq!(
                &cursor.kruskal().factors[m],
                &restored.kruskal().factors[m],
                "mode {} factors diverged", m
            );
        }
        prop_assert_eq!(cursor.anomalies(), restored.anomalies());
    }

    /// Corrupting any single byte of a snapshot is detected as a typed
    /// codec error — never a panic, never a silently wrong engine.
    #[test]
    fn corruption_never_panics_and_is_typed(
        family in 0usize..7,
        flip in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let tuples = stream(0xbad, 200);
        let spec = family_spec(family);
        let mut engine = spec.clone().build(3);
        drive_protocol(engine.as_mut(), &tuples);
        let snapshot = EngineSnapshot {
            stream_id: 9,
            spec,
            seed: 3,
            wal_seq: 0,
            state: engine.snapshot().unwrap(),
        };
        let mut bytes = to_bytes(&snapshot);
        let at = flip % bytes.len();
        bytes[at] ^= 1 << bit;
        match from_bytes(&bytes) {
            Ok(_) => prop_assert!(false, "corrupted snapshot decoded cleanly"),
            Err(SnsError::Codec { .. }) => {}
            Err(other) => prop_assert!(false, "non-codec error: {other:?}"),
        }
    }
}

/// Section boundaries are where framing bugs live: truncate exactly at
/// the envelope header, at each section's tag/length/payload edges, and
/// inside the checksum, for every family.
#[test]
fn truncation_at_section_boundaries_is_typed_for_every_family() {
    let tuples = stream(0xfee1, 250);
    for family in 0..7 {
        let spec = family_spec(family);
        let mut engine = spec.clone().build(5);
        drive_protocol(engine.as_mut(), &tuples);
        let snapshot = EngineSnapshot {
            stream_id: 1,
            spec,
            seed: 5,
            wal_seq: 0,
            state: engine.snapshot().unwrap(),
        };
        let bytes = to_bytes(&snapshot);

        // Recompute the section frame offsets from the envelope layout:
        // magic(4) version(2) count(1), then per section tag(1) len(8).
        let mut boundaries = vec![0usize, 3, 4, 6, 7];
        let mut at = 7usize;
        for _ in 0..3 {
            boundaries.push(at); // before the tag
            boundaries.push(at + 1); // inside the length
            let len = u64::from_le_bytes(bytes[at + 1..at + 9].try_into().unwrap()) as usize;
            boundaries.push(at + 9); // payload start
            boundaries.push(at + 9 + len / 2); // mid-payload
            at = at + 9 + len;
            boundaries.push(at); // payload end
        }
        boundaries.push(bytes.len() - 8); // before the checksum
        boundaries.push(bytes.len() - 1); // inside the checksum
        for &cut in &boundaries {
            match from_bytes(&bytes[..cut.min(bytes.len())]) {
                Err(SnsError::Codec { .. }) => {}
                Err(other) => {
                    panic!("family {family} cut {cut}: non-codec error {other:?}")
                }
                Ok(_) => panic!("family {family} cut {cut}: truncated snapshot decoded"),
            }
        }

        // Checksum byte flips are always caught.
        for delta in 1..=8usize {
            let mut bad = bytes.clone();
            let at = bad.len() - delta;
            bad[at] ^= 0x5a;
            assert!(
                matches!(from_bytes(&bad), Err(SnsError::Codec { .. })),
                "family {family}: checksum flip at -{delta} decoded"
            );
        }
    }
}

/// The checked-in golden fixtures: the **v2** fixture must decode and
/// re-encode byte-identically (wire-format pin), and the **v1** fixture
/// — frozen when `SCHEMA_VERSION` was 1 and never regenerated — must
/// still thaw and re-encode to its committed v1 bytes (the
/// reader-keeps-every-prior-version promise). If the v2 half fails, the
/// wire format changed — bump `SCHEMA_VERSION` and regenerate
/// (`GOLDEN_BLESS=1 cargo test -q --test state_capture golden`).
#[test]
fn golden_fixtures_pin_the_wire_format_and_v1_compat() {
    let v2_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_snapshot_v2.snsc");
    let snapshot = golden_snapshot();
    let bytes = to_bytes(&snapshot);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(v2_path, &bytes).unwrap();
    }
    let committed = std::fs::read(v2_path)
        .unwrap_or_else(|e| panic!("golden fixture missing ({e}); regenerate with GOLDEN_BLESS=1"));
    assert_eq!(SCHEMA_VERSION, 2, "schema bumped: regenerate the golden fixture");
    assert_eq!(
        committed, bytes,
        "wire format drifted without a SCHEMA_VERSION bump (or fixture is stale)"
    );
    let decoded = from_bytes(&committed).unwrap();
    assert_eq!(to_bytes(&decoded), committed);

    // The v1 fixture is immutable history: never re-blessed. Decoding it
    // must keep working, and the legacy writer must reproduce it.
    let v1_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_snapshot_v1.snsc");
    let v1_committed = std::fs::read(v1_path).expect("v1 golden fixture is checked in");
    let thawed = from_bytes(&v1_committed).unwrap();
    assert_eq!(thawed.wal_seq, 0, "v1 snapshots predate the WAL");
    assert_eq!(
        to_bytes_v1(&thawed).unwrap(),
        v1_committed,
        "v1 compatibility broke: old checkpoints would no longer thaw"
    );
    assert_eq!(to_bytes(&thawed), committed, "upgrading the v1 fixture must yield the v2 fixture");
}

/// A deterministic snapshot built from prefill only — no factor updates,
/// no ALS — so the fixture bytes depend on the wire format and the
/// seeded initialization, not on float-kernel implementation details
/// that performance PRs legitimately reassociate.
fn golden_snapshot() -> EngineSnapshot {
    let config = SnsConfig { rank: 2, theta: 3, seed: 0x901d, ..Default::default() };
    let spec = EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config).with_seed(0x901d);
    let mut engine = spec.clone().build(0x901d);
    for t in 0..40u64 {
        engine
            .prefill(StreamTuple::new(
                [(t % 4) as u32, ((t * 2) % 3) as u32],
                1.0 + (t % 3) as f64,
                t,
            ))
            .unwrap();
    }
    EngineSnapshot {
        stream_id: 1,
        spec,
        seed: 0x901d,
        wal_seq: 0,
        state: engine.snapshot().unwrap(),
    }
}
