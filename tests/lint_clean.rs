//! Tier-1 gate: the live workspace must lint clean under `sns-lint`.
//!
//! This is the same check CI's `lint` job runs via the binary, wired
//! into `cargo test` through the library API so a violation (or a stale
//! allowlist entry, or a malformed `lint.toml`) fails the ordinary test
//! suite too — nobody has to remember to run the linter.

use std::path::Path;

use sns_lint::Config;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn load_config() -> Config {
    let path = workspace_root().join("lint.toml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Config::parse(&text).unwrap_or_else(|e| panic!("{e}"))
}

#[test]
fn workspace_lints_clean() {
    let config = load_config();
    let report = sns_lint::run(workspace_root(), &config).expect("lint scan failed");
    let rendered = report.render_text();
    assert_eq!(report.violation_count(), 0, "workspace has lint violations:\n{rendered}");
    // A scan that silently saw nothing would also "pass" — require the
    // walker to have found the real tree.
    assert!(
        report.files_scanned > 80,
        "suspiciously few files scanned ({}): did the walker break?",
        report.files_scanned
    );
}

#[test]
fn allowlist_has_no_stale_entries() {
    let config = load_config();
    let report = sns_lint::run(workspace_root(), &config).expect("lint scan failed");
    assert!(
        report.unused_allow.is_empty(),
        "stale lint.toml entries (delete them): {:?}",
        report.unused_allow
    );
}

#[test]
fn every_exception_is_justified() {
    // Config::parse enforces this, but pin the contract explicitly: all
    // entries carry non-empty justifications.
    let config = load_config();
    for e in &config.allow {
        assert!(!e.justification.trim().is_empty(), "unjustified allow for {}", e.path);
    }
    for e in &config.lock_order {
        assert!(!e.justification.trim().is_empty(), "unjustified lock-order for {}", e.path);
    }
    // And the allowlist covers a bounded set of rules — a typo'd rule id
    // would silently never match.
    for e in &config.allow {
        assert!(
            e.rule == "*" || sns_lint::rules::ALL_RULES.contains(&e.rule.as_str()),
            "allow entry names unknown rule `{}`",
            e.rule
        );
    }
}

#[test]
fn json_report_is_well_formed() {
    let config = load_config();
    let report = sns_lint::run(workspace_root(), &config).expect("lint scan failed");
    let json = report.to_json();
    assert!(json.contains("\"tool\": \"sns-lint\""));
    assert!(json.contains("\"violations\": 0"));
    // Balanced braces/brackets — cheap structural sanity without a
    // JSON parser dependency.
    let (mut braces, mut brackets, mut in_str, mut esc) = (0i32, 0i32, false, false);
    for ch in json.chars() {
        if esc {
            esc = false;
            continue;
        }
        match ch {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' if !in_str => braces += 1,
            '}' if !in_str => braces -= 1,
            '[' if !in_str => brackets += 1,
            ']' if !in_str => brackets -= 1,
            _ => {}
        }
    }
    assert_eq!(braces, 0, "unbalanced braces in JSON report");
    assert_eq!(brackets, 0, "unbalanced brackets in JSON report");
}
