//! Cross-crate integration tests: the full pipeline from raw stream
//! tuples to continuously maintained CP factors, against every algorithm
//! and both window models.

use slicenstitch::baselines::{AlsPeriodic, BaselineEngine, CpStream, NeCpd, OnlineScp};
use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig, SnsEngine};
use slicenstitch::data::{generate, GeneratorConfig};
use slicenstitch::stream::StreamTuple;

fn structured_stream(events: usize, seed: u64) -> Vec<StreamTuple> {
    generate(&GeneratorConfig {
        base_dims: vec![25, 20],
        n_components: 4,
        events,
        duration: 18_000,
        zipf_exponent: 1.6,
        noise_fraction: 0.1,
        day_ticks: 3_000,
        seed,
        ..Default::default()
    })
}

const W: usize = 6;
const T: u64 = 500;

fn warmed_engine(kind: AlgorithmKind, stream: &[StreamTuple]) -> (SnsEngine, usize) {
    let sns = SnsConfig { rank: 8, theta: 15, eta: 1000.0, ..Default::default() };
    let mut engine = SnsEngine::new(&[25, 20], W, T, kind, &sns);
    let cut = stream.partition_point(|t| t.time <= W as u64 * T);
    for tu in &stream[..cut] {
        engine.prefill(*tu).unwrap();
    }
    engine.warm_start(&AlsOptions { max_iters: 25, ..Default::default() });
    (engine, cut)
}

#[test]
fn every_sns_variant_tracks_a_structured_stream() {
    let stream = structured_stream(6_000, 1);
    for kind in AlgorithmKind::ALL {
        let (mut engine, cut) = warmed_engine(kind, &stream);
        let warm_fit = engine.fitness();
        // SNS_MAT is too slow for the whole stream; a shorter run suffices.
        let n = if kind == AlgorithmKind::Mat { 200 } else { stream.len() - cut };
        for tu in stream[cut..].iter().take(n) {
            engine.ingest(*tu).unwrap();
        }
        let fit = engine.fitness();
        if kind.is_stable() {
            assert!(!engine.diverged(), "{kind} diverged");
            assert!(
                fit > 0.4 * warm_fit,
                "{kind}: fitness {fit} collapsed from warm {warm_fit}"
            );
        }
        // Every variant keeps the parameter count constant.
        assert_eq!(engine.num_parameters(), 8 * (25 + 20 + W));
    }
}

#[test]
fn continuous_beats_periodic_update_latency() {
    // The core claim: per-event updates are far cheaper than per-period
    // ones (the baselines re-sweep slices/windows once per period).
    let stream = structured_stream(6_000, 2);
    let (mut engine, cut) = warmed_engine(AlgorithmKind::PlusRnd, &stream);
    let start = std::time::Instant::now();
    for tu in &stream[cut..] {
        engine.ingest(*tu).unwrap();
    }
    let sns_us = start.elapsed().as_secs_f64() * 1e6 / engine.updates_applied() as f64;

    let mut baseline =
        BaselineEngine::new(&[25, 20], W, T, OnlineScp::new(&[25, 20, W], 8, 3));
    for tu in &stream[..cut] {
        baseline.prefill(*tu).unwrap();
    }
    baseline.warm_start(&AlsOptions { max_iters: 25, ..Default::default() });
    let start = std::time::Instant::now();
    for tu in &stream[cut..] {
        baseline.ingest(*tu).unwrap();
    }
    let periods = baseline.periods().max(1);
    let base_us = start.elapsed().as_secs_f64() * 1e6 / periods as f64;
    assert!(
        sns_us < base_us,
        "per-event update ({sns_us:.1} us) should beat per-period update ({base_us:.1} us)"
    );
}

#[test]
fn all_baselines_run_and_stay_finite() {
    let stream = structured_stream(5_000, 3);
    let dims = [25usize, 20, W];
    let cut = stream.partition_point(|t| t.time <= W as u64 * T);
    macro_rules! drive {
        ($algo:expr, $name:expr) => {{
            let mut e = BaselineEngine::new(&[25, 20], W, T, $algo);
            for tu in &stream[..cut] {
                e.prefill(*tu).unwrap();
            }
            e.warm_start(&AlsOptions { max_iters: 20, ..Default::default() });
            for tu in &stream[cut..] {
                e.ingest(*tu).unwrap();
            }
            let fit = e.fitness();
            assert!(fit.is_finite(), "{} produced non-finite fitness", $name);
            assert!(fit > -1.0, "{} fitness {} unreasonable", $name, fit);
            fit
        }};
    }
    let f1 = drive!(AlsPeriodic::new(&dims, 8, 3, 4), "ALS(3)");
    let f2 = drive!(OnlineScp::new(&dims, 8, 4), "OnlineSCP");
    let f3 = drive!(CpStream::new(&dims, 8, 0.99, 3, 4), "CP-stream");
    let f4 = drive!(NeCpd::new(&dims, 8, 2, 4), "NeCPD(2)");
    // Periodic ALS with several sweeps should be the best of the four.
    assert!(f1 >= f2.min(f3).min(f4) - 0.05, "ALS(3)={f1} vs {f2}/{f3}/{f4}");
}

#[test]
fn engine_survives_bursts_gaps_and_duplicates() {
    // Stress the event machinery: bursts at one timestamp, long silences,
    // duplicate coordinates, and values that cancel in and out.
    let sns = SnsConfig { rank: 4, theta: 8, ..Default::default() };
    let mut engine = SnsEngine::new(&[10, 10], 4, 100, AlgorithmKind::PlusVec, &sns);
    let mut t = 0u64;
    for burst in 0..50 {
        // Burst of identical-timestamp events.
        for i in 0..20u32 {
            engine
                .ingest(StreamTuple::new([i % 10, (i / 2) % 10], 1.0, t))
                .unwrap();
        }
        // Long gap that expires everything every few bursts.
        t += if burst % 5 == 4 { 1_000 } else { 37 };
    }
    engine.advance_to(t + 10_000);
    assert_eq!(engine.window().nnz(), 0, "all mass must expire after a long gap");
    assert!(engine.kruskal().is_finite());
    engine.window().check_invariants().unwrap();
}

#[test]
fn four_mode_streams_work_end_to_end() {
    // Ride-Austin-shaped: src × dst × color × time.
    let stream: Vec<StreamTuple> = generate(&GeneratorConfig {
        base_dims: vec![12, 12, 4],
        n_components: 3,
        events: 4_000,
        duration: 12_000,
        zipf_exponent: 1.5,
        noise_fraction: 0.1,
        day_ticks: 2_000,
        seed: 5,
        ..Default::default()
    });
    let sns = SnsConfig { rank: 5, theta: 10, ..Default::default() };
    let mut engine = SnsEngine::new(&[12, 12, 4], 5, 400, AlgorithmKind::PlusRnd, &sns);
    let cut = stream.partition_point(|t| t.time <= 2_000);
    for tu in &stream[..cut] {
        engine.prefill(*tu).unwrap();
    }
    engine.warm_start(&AlsOptions { max_iters: 20, ..Default::default() });
    for tu in &stream[cut..] {
        engine.ingest(*tu).unwrap();
    }
    assert!(engine.fitness() > 0.0, "4-mode fitness {}", engine.fitness());
    assert_eq!(engine.kruskal().order(), 4);
}

#[test]
fn relative_fitness_of_stable_variants_in_paper_band() {
    // Observation 4 in miniature: stable variants within 72–100%+ of the
    // ALS reference (the generous lower end accounts for the small scale).
    let stream = structured_stream(8_000, 6);
    for kind in [AlgorithmKind::PlusVec, AlgorithmKind::PlusRnd] {
        let (mut engine, cut) = warmed_engine(kind, &stream);
        for tu in &stream[cut..] {
            engine.ingest(*tu).unwrap();
        }
        let reference = slicenstitch::core::als::als(
            engine.window(),
            8,
            &AlsOptions { max_iters: 30, ..Default::default() },
        );
        let rel = engine.fitness() / reference.fitness;
        assert!(
            rel > 0.55 && rel < 1.2,
            "{kind}: relative fitness {rel} outside the plausible band"
        );
    }
}
