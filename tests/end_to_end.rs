//! Cross-crate integration tests: the full pipeline from raw stream
//! tuples to continuously maintained CP factors, against every algorithm
//! and both window models — plus the engine-parity suite pinning the
//! unified `StreamingCpd` runner to the historical split drive loops.

use slicenstitch::baselines::{AlsPeriodic, BaselineEngine, CpStream, NeCpd, OnlineScp};
use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig, SnsEngine};
use slicenstitch::data::{generate, GeneratorConfig};
use slicenstitch::stream::StreamTuple;

fn structured_stream(events: usize, seed: u64) -> Vec<StreamTuple> {
    generate(&GeneratorConfig {
        base_dims: vec![25, 20],
        n_components: 4,
        events,
        duration: 18_000,
        zipf_exponent: 1.6,
        noise_fraction: 0.1,
        day_ticks: 3_000,
        seed,
        ..Default::default()
    })
}

const W: usize = 6;
const T: u64 = 500;

fn warmed_engine(kind: AlgorithmKind, stream: &[StreamTuple]) -> (SnsEngine, usize) {
    let sns = SnsConfig { rank: 8, theta: 15, eta: 1000.0, ..Default::default() };
    let mut engine = SnsEngine::new(&[25, 20], W, T, kind, &sns);
    let cut = stream.partition_point(|t| t.time <= W as u64 * T);
    for tu in &stream[..cut] {
        engine.prefill(*tu).unwrap();
    }
    engine.warm_start(&AlsOptions { max_iters: 25, ..Default::default() });
    (engine, cut)
}

#[test]
fn every_sns_variant_tracks_a_structured_stream() {
    let stream = structured_stream(6_000, 1);
    for kind in AlgorithmKind::ALL {
        let (mut engine, cut) = warmed_engine(kind, &stream);
        let warm_fit = engine.fitness();
        // SNS_MAT is too slow for the whole stream; a shorter run suffices.
        let n = if kind == AlgorithmKind::Mat { 200 } else { stream.len() - cut };
        for tu in stream[cut..].iter().take(n) {
            engine.ingest(*tu).unwrap();
        }
        let fit = engine.fitness();
        if kind.is_stable() {
            assert!(!engine.diverged(), "{kind} diverged");
            assert!(fit > 0.4 * warm_fit, "{kind}: fitness {fit} collapsed from warm {warm_fit}");
        }
        // Every variant keeps the parameter count constant.
        assert_eq!(engine.num_parameters(), 8 * (25 + 20 + W));
    }
}

#[test]
fn continuous_beats_periodic_update_latency() {
    // The core claim: per-event updates are far cheaper than per-period
    // ones (the baselines re-sweep slices/windows once per period).
    let stream = structured_stream(6_000, 2);
    let (mut engine, cut) = warmed_engine(AlgorithmKind::PlusRnd, &stream);
    let start = std::time::Instant::now();
    for tu in &stream[cut..] {
        engine.ingest(*tu).unwrap();
    }
    let sns_us = start.elapsed().as_secs_f64() * 1e6 / engine.updates_applied() as f64;

    let mut baseline = BaselineEngine::new(&[25, 20], W, T, OnlineScp::new(&[25, 20, W], 8, 3));
    for tu in &stream[..cut] {
        baseline.prefill(*tu).unwrap();
    }
    baseline.warm_start(&AlsOptions { max_iters: 25, ..Default::default() });
    let start = std::time::Instant::now();
    for tu in &stream[cut..] {
        baseline.ingest(*tu).unwrap();
    }
    let periods = baseline.periods().max(1);
    let base_us = start.elapsed().as_secs_f64() * 1e6 / periods as f64;
    assert!(
        sns_us < base_us,
        "per-event update ({sns_us:.1} us) should beat per-period update ({base_us:.1} us)"
    );
}

#[test]
fn all_baselines_run_and_stay_finite() {
    let stream = structured_stream(5_000, 3);
    let dims = [25usize, 20, W];
    let cut = stream.partition_point(|t| t.time <= W as u64 * T);
    macro_rules! drive {
        ($algo:expr, $name:expr) => {{
            let mut e = BaselineEngine::new(&[25, 20], W, T, $algo);
            for tu in &stream[..cut] {
                e.prefill(*tu).unwrap();
            }
            e.warm_start(&AlsOptions { max_iters: 20, ..Default::default() });
            for tu in &stream[cut..] {
                e.ingest(*tu).unwrap();
            }
            let fit = e.fitness();
            assert!(fit.is_finite(), "{} produced non-finite fitness", $name);
            assert!(fit > -1.0, "{} fitness {} unreasonable", $name, fit);
            fit
        }};
    }
    let f1 = drive!(AlsPeriodic::new(&dims, 8, 3, 4), "ALS(3)");
    let f2 = drive!(OnlineScp::new(&dims, 8, 4), "OnlineSCP");
    let f3 = drive!(CpStream::new(&dims, 8, 0.99, 3, 4), "CP-stream");
    let f4 = drive!(NeCpd::new(&dims, 8, 2, 4), "NeCPD(2)");
    // Periodic ALS with several sweeps should be the best of the four.
    assert!(f1 >= f2.min(f3).min(f4) - 0.05, "ALS(3)={f1} vs {f2}/{f3}/{f4}");
}

#[test]
fn engine_survives_bursts_gaps_and_duplicates() {
    // Stress the event machinery: bursts at one timestamp, long silences,
    // duplicate coordinates, and values that cancel in and out.
    let sns = SnsConfig { rank: 4, theta: 8, ..Default::default() };
    let mut engine = SnsEngine::new(&[10, 10], 4, 100, AlgorithmKind::PlusVec, &sns);
    let mut t = 0u64;
    for burst in 0..50 {
        // Burst of identical-timestamp events.
        for i in 0..20u32 {
            engine.ingest(StreamTuple::new([i % 10, (i / 2) % 10], 1.0, t)).unwrap();
        }
        // Long gap that expires everything every few bursts.
        t += if burst % 5 == 4 { 1_000 } else { 37 };
    }
    engine.advance_to(t + 10_000);
    assert_eq!(engine.window().nnz(), 0, "all mass must expire after a long gap");
    assert!(engine.kruskal().is_finite());
    engine.window().check_invariants().unwrap();
}

#[test]
fn four_mode_streams_work_end_to_end() {
    // Ride-Austin-shaped: src × dst × color × time.
    let stream: Vec<StreamTuple> = generate(&GeneratorConfig {
        base_dims: vec![12, 12, 4],
        n_components: 3,
        events: 4_000,
        duration: 12_000,
        zipf_exponent: 1.5,
        noise_fraction: 0.1,
        day_ticks: 2_000,
        seed: 5,
        ..Default::default()
    });
    let sns = SnsConfig { rank: 5, theta: 10, ..Default::default() };
    let mut engine = SnsEngine::new(&[12, 12, 4], 5, 400, AlgorithmKind::PlusRnd, &sns);
    let cut = stream.partition_point(|t| t.time <= 2_000);
    for tu in &stream[..cut] {
        engine.prefill(*tu).unwrap();
    }
    engine.warm_start(&AlsOptions { max_iters: 20, ..Default::default() });
    for tu in &stream[cut..] {
        engine.ingest(*tu).unwrap();
    }
    assert!(engine.fitness() > 0.0, "4-mode fitness {}", engine.fitness());
    assert_eq!(engine.kruskal().order(), 4);
}

/// Engine parity: the unified trait-based runner (`Method::build` +
/// `runner::drive`) must reproduce the historical split
/// `run_continuous`/`run_periodic` loops **bitwise**. The reference
/// implementations below are faithful copies of those seed loops (minus
/// wall-clock bookkeeping, which checkpoints never depended on).
mod engine_parity {
    use super::*;
    use slicenstitch::baselines::PeriodicCpd;
    use slicenstitch::core::als::als;
    use slicenstitch::stream::DiscreteWindow;
    use sns_bench::runner::{
        checkpoint_indices, run_method, split_prefill, ExperimentParams, RunConfig, RunResult,
    };
    use sns_bench::Method;

    /// One reference checkpoint: `(tuple_idx, time, fitness, reference)`.
    type RefPoint = (usize, u64, f64, f64);

    struct Reference {
        series: Vec<RefPoint>,
        updates: u64,
        tuples: usize,
        diverged: bool,
        parameters: usize,
    }

    fn params() -> ExperimentParams {
        ExperimentParams {
            base_dims: vec![9, 7],
            window: 4,
            period: 25,
            rank: 3,
            theta: 10,
            eta: 1000.0,
        }
    }

    fn stream(p: &ExperimentParams) -> Vec<StreamTuple> {
        generate(&GeneratorConfig {
            base_dims: p.base_dims.clone(),
            n_components: 3,
            events: 2_000,
            duration: 6 * p.window as u64 * p.period,
            day_ticks: 50,
            seed: 0x7a17,
            ..Default::default()
        })
    }

    /// Faithful copy of the seed runner's continuous loop.
    fn reference_continuous(
        p: &ExperimentParams,
        stream: &[StreamTuple],
        kind: AlgorithmKind,
        cfg: &RunConfig,
    ) -> Reference {
        let sns_config = SnsConfig {
            rank: p.rank,
            theta: p.theta,
            eta: p.eta,
            init_scale: 1.0,
            seed: cfg.seed,
            ..Default::default()
        };
        let mut engine = SnsEngine::new(&p.base_dims, p.window, p.period, kind, &sns_config);
        let (prefill, measured) = split_prefill(p, stream);
        for tu in prefill {
            engine.prefill(*tu).unwrap();
        }
        engine.warm_start(&cfg.als);
        let measured = match cfg.max_measured_tuples {
            Some(cap) => &measured[..measured.len().min(cap)],
            None => measured,
        };
        let marks = checkpoint_indices(measured.len(), cfg.checkpoints);
        let mut series = Vec::new();
        let mut next_mark = 0usize;
        for (i, tu) in measured.iter().enumerate() {
            engine.ingest(*tu).unwrap();
            if next_mark < marks.len() && i == marks[next_mark] {
                let fitness = engine.fitness();
                let reference = als(engine.window(), p.rank, &cfg.als).fitness;
                series.push((i, tu.time, fitness, reference));
                next_mark += 1;
            }
        }
        Reference {
            series,
            updates: engine.updates_applied(),
            tuples: measured.len(),
            diverged: engine.diverged(),
            parameters: engine.num_parameters(),
        }
    }

    /// Faithful copy of the seed runner's periodic loop, including its
    /// fresh-`als()` warm start and its `cfg.seed`-seeded constructors
    /// (whose initial factors the warm start overwrote).
    fn reference_periodic(
        p: &ExperimentParams,
        stream: &[StreamTuple],
        method: Method,
        cfg: &RunConfig,
    ) -> Reference {
        let mut dims = p.base_dims.clone();
        dims.push(p.window);
        let mut algo: Box<dyn PeriodicCpd> = match method {
            Method::AlsPeriodic(sweeps) => {
                Box::new(AlsPeriodic::new(&dims, p.rank, sweeps, cfg.seed))
            }
            Method::OnlineScp => Box::new(OnlineScp::new(&dims, p.rank, cfg.seed)),
            Method::CpStream => Box::new(CpStream::new(&dims, p.rank, 0.99, 3, cfg.seed)),
            Method::NeCpd(epochs) => Box::new(NeCpd::new(&dims, p.rank, epochs, cfg.seed)),
            Method::Sns(_) => unreachable!("continuous methods use reference_continuous"),
        };
        let mut window = DiscreteWindow::new(&p.base_dims, p.window, p.period);
        let (prefill, measured) = split_prefill(p, stream);
        let mut updates_buf = Vec::new();
        for tu in prefill {
            updates_buf.clear();
            window.ingest(*tu, &mut updates_buf).unwrap();
        }
        {
            let warm = als(window.tensor(), p.rank, &cfg.als);
            algo.install(warm.kruskal, warm.grams);
        }
        let measured = match cfg.max_measured_tuples {
            Some(cap) => &measured[..measured.len().min(cap)],
            None => measured,
        };
        let marks = checkpoint_indices(measured.len(), cfg.checkpoints);
        let mut series = Vec::new();
        let mut next_mark = 0usize;
        let mut updates = 0u64;
        for (i, tu) in measured.iter().enumerate() {
            updates_buf.clear();
            window.ingest(*tu, &mut updates_buf).unwrap();
            for u in &updates_buf {
                algo.on_period(window.tensor(), u);
            }
            updates += updates_buf.len() as u64;
            if next_mark < marks.len() && i == marks[next_mark] {
                let fitness = algo.fitness(window.tensor());
                let reference = als(window.tensor(), p.rank, &cfg.als).fitness;
                series.push((i, tu.time, fitness, reference));
                next_mark += 1;
            }
        }
        Reference {
            series,
            updates,
            tuples: measured.len(),
            diverged: !algo.kruskal().is_finite(),
            parameters: p.rank * (p.base_dims.iter().sum::<usize>() + p.window),
        }
    }

    fn assert_bitwise_parity(run: &RunResult, reference: &Reference, label: &str) {
        assert_eq!(run.updates, reference.updates, "{label}: update count");
        assert_eq!(run.tuples, reference.tuples, "{label}: tuple count");
        assert_eq!(run.diverged, reference.diverged, "{label}: divergence flag");
        assert_eq!(run.parameters, reference.parameters, "{label}: parameter count");
        assert_eq!(run.series.len(), reference.series.len(), "{label}: series length");
        for (c, &(idx, time, fitness, reffit)) in run.series.iter().zip(&reference.series) {
            assert_eq!(c.tuple_idx, idx, "{label}: checkpoint index");
            assert_eq!(c.time, time, "{label}: checkpoint time");
            assert_eq!(
                c.fitness.to_bits(),
                fitness.to_bits(),
                "{label}: fitness differs at tuple {idx} ({} vs {fitness})",
                c.fitness
            );
            assert_eq!(
                c.reference.to_bits(),
                reffit.to_bits(),
                "{label}: reference fitness differs at tuple {idx}"
            );
        }
    }

    #[test]
    fn continuous_runner_matches_seed_loop_bitwise() {
        let p = params();
        let s = stream(&p);
        let cfg = RunConfig { checkpoints: 5, ..Default::default() };
        for kind in [AlgorithmKind::PlusRnd, AlgorithmKind::Vec] {
            let run = run_method(&p, &s, Method::Sns(kind), &cfg);
            let reference = reference_continuous(&p, &s, kind, &cfg);
            assert_eq!(run.method, kind.name());
            assert_bitwise_parity(&run, &reference, kind.name());
        }
    }

    #[test]
    fn periodic_runner_matches_seed_loop_bitwise() {
        let p = params();
        let s = stream(&p);
        let cfg = RunConfig { checkpoints: 5, ..Default::default() };
        // OnlineSCP and periodic ALS are RNG-free after their warm start,
        // so the unified runner must reproduce the seed loop bitwise.
        // (NeCPD keeps a live SGD sampler whose seed moved from
        // `cfg.seed` to `cfg.als.seed` in the unified factory, so it is
        // statistically — not bitwise — equivalent.)
        for method in [Method::OnlineScp, Method::AlsPeriodic(2)] {
            let run = run_method(&p, &s, method, &cfg);
            let reference = reference_periodic(&p, &s, method, &cfg);
            assert_eq!(run.method, method.name());
            assert_bitwise_parity(&run, &reference, &method.name());
        }
    }
}

#[test]
fn relative_fitness_of_stable_variants_in_paper_band() {
    // Observation 4 in miniature: stable variants within 72–100%+ of the
    // ALS reference (the generous lower end accounts for the small scale).
    let stream = structured_stream(8_000, 6);
    for kind in [AlgorithmKind::PlusVec, AlgorithmKind::PlusRnd] {
        let (mut engine, cut) = warmed_engine(kind, &stream);
        for tu in &stream[cut..] {
            engine.ingest(*tu).unwrap();
        }
        let reference = slicenstitch::core::als::als(
            engine.window(),
            8,
            &AlsOptions { max_iters: 30, ..Default::default() },
        );
        let rel = engine.fitness() / reference.fitness;
        assert!(
            rel > 0.55 && rel < 1.2,
            "{kind}: relative fitness {rel} outside the plausible band"
        );
    }
}
