//! Scenario-layer contract (trace replay + anomaly decoration):
//!
//! - a CSV trace replayed through a pooled `StreamSession` by the
//!   deterministic replay driver is **bitwise-identical** to a serial
//!   `ingest_all` run of the same spec and derived seed;
//! - decorating any engine with `AnomalyCpd` (directly or via the
//!   declarative `EngineSpec::with_anomaly`) leaves the factor
//!   trajectory **bitwise unchanged** while the detector scores the
//!   stream, and pooled reports carry the anomaly summary.

use slicenstitch::core::als::AlsOptions;
use slicenstitch::core::{AlgorithmKind, SnsConfig};
use slicenstitch::data::csvio::{read_stream, write_stream};
use slicenstitch::data::replay::{replay, ReplayPlan};
use slicenstitch::data::{generate, inject_anomalies, GeneratorConfig};
use slicenstitch::runtime::pool::stream_seed;
use slicenstitch::runtime::{
    AnomalyConfig, AnomalyCpd, BaselineKind, EnginePool, EngineSpec, PoolConfig, StreamingCpd,
};
use slicenstitch::stream::StreamTuple;

const BASE_DIMS: [usize; 2] = [10, 8];
const W: usize = 4;
const T: u64 = 50;
const BASE_SEED: u64 = 0x7ace;

fn sns_spec() -> EngineSpec {
    let config = SnsConfig { rank: 3, theta: 8, ..Default::default() };
    EngineSpec::sns(&BASE_DIMS, W, T, AlgorithmKind::PlusRnd, &config)
}

fn baseline_spec() -> EngineSpec {
    EngineSpec::baseline(&BASE_DIMS, W, T, 3, BaselineKind::OnlineScp)
}

fn trace(seed: u64) -> Vec<StreamTuple> {
    generate(&GeneratorConfig {
        base_dims: BASE_DIMS.to_vec(),
        n_components: 3,
        events: 800,
        duration: 6 * W as u64 * T,
        day_ticks: 40,
        seed,
        ..Default::default()
    })
}

fn als_opts() -> AlsOptions {
    AlsOptions { max_iters: 12, tol: 1e-4, ..Default::default() }
}

fn plan() -> ReplayPlan {
    ReplayPlan {
        prefill_until: Some(W as u64 * T),
        warm_start: Some(als_opts()),
        bucket_ticks: T,
        max_batch: 64,
        advance_to: Some(6 * W as u64 * T),
    }
}

/// Serial reference for a spec: the paper protocol with one `ingest_all`
/// over the live phase, built from the pool's derived seed.
fn run_serial(spec: EngineSpec, id: u64, tuples: &[StreamTuple]) -> (f64, u64) {
    let mut engine = spec.build(stream_seed(BASE_SEED, id));
    let cut = tuples.partition_point(|t| t.time <= W as u64 * T);
    engine.prefill_all(&tuples[..cut]).unwrap();
    engine.warm_start(&als_opts());
    engine.ingest_all(&tuples[cut..]).unwrap();
    engine.advance_to(6 * W as u64 * T);
    (engine.fitness(), engine.updates_applied())
}

/// The tentpole contract: CSV → replay driver → pooled session is
/// bitwise-identical to serial `ingest_all`, for both engine families.
#[test]
fn csv_replay_through_pool_matches_serial_ingest_all_bitwise() {
    let original = trace(0xfeed);
    // Round-trip the trace through the CSV format first, so the whole
    // on-disk path (write → read → replay) is covered.
    let mut csv = Vec::new();
    write_stream(&mut csv, &original).unwrap();
    let tuples = read_stream(&csv[..]).unwrap();
    assert_eq!(tuples, original, "CSV round trip must be lossless");

    let pool = EnginePool::new(PoolConfig {
        shards: 3,
        base_seed: BASE_SEED,
        queue_depth: 8,
        ..Default::default()
    });
    for (id, spec) in [(2u64, sns_spec()), (3u64, baseline_spec())] {
        let (serial_fitness, serial_updates) = run_serial(spec.clone(), id, &original);
        let mut session = pool.open(id, spec).unwrap();
        let report = replay(&mut session, &tuples, &plan()).unwrap();
        assert_eq!(report.prefilled + report.ingested, tuples.len());
        assert!(report.batches > 1, "time bucketing must split the live phase");
        let health = session.report().unwrap();
        assert_eq!(health.error, None, "stream {id}");
        assert_eq!(
            health.fitness.to_bits(),
            serial_fitness.to_bits(),
            "stream {id}: pooled replay fitness {} vs serial {serial_fitness}",
            health.fitness
        );
        assert_eq!(health.updates_applied, serial_updates, "stream {id} update count");
        session.close();
    }
    pool.join();
}

/// Decoration invariance, driven through the full protocol: factors,
/// fitness, and update counts of a decorated engine are bitwise equal to
/// the undecorated engine's at every checkpoint — for both families.
#[test]
fn anomaly_decorator_leaves_the_factor_trajectory_bitwise_unchanged() {
    let tuples = trace(0xbee5);
    let cut = tuples.partition_point(|t| t.time <= W as u64 * T);
    for spec in [sns_spec(), baseline_spec()] {
        let mut plain = spec.clone().build(9);
        let mut wrapped =
            AnomalyCpd::new(spec.build(9), AnomalyConfig { threshold: 3.0, max_events: 64 });
        plain.prefill_all(&tuples[..cut]).unwrap();
        wrapped.prefill_all(&tuples[..cut]).unwrap();
        plain.warm_start(&als_opts());
        wrapped.warm_start(&als_opts());
        for chunk in tuples[cut..].chunks(57) {
            let a = plain.ingest_all(chunk).unwrap();
            let b = wrapped.ingest_all(chunk).unwrap();
            assert_eq!(a, b, "batch outcomes diverged");
            assert_eq!(plain.fitness().to_bits(), wrapped.fitness().to_bits());
            for m in 0..plain.kruskal().factors.len() {
                assert_eq!(
                    plain.kruskal().factors[m],
                    wrapped.kruskal().factors[m],
                    "mode {m} factors diverged"
                );
            }
        }
        assert_eq!(plain.advance_to(6 * W as u64 * T), wrapped.advance_to(6 * W as u64 * T));
        assert_eq!(plain.updates_applied(), wrapped.updates_applied());
        // The decorator did real scoring work on the side.
        let summary = wrapped.summary();
        assert_eq!(summary.scored as usize, tuples.len() - cut);
        assert!(summary.mean_error >= 0.0);
    }
}

/// Pooled decorated engines: built declaratively on the worker via
/// `EngineSpec::with_anomaly`, bitwise-transparent, and their summaries
/// ride back on every `StreamReport`.
#[test]
fn pooled_decorated_stream_reports_anomalies_and_preserves_factors() {
    let clean = trace(0x5afe);
    // Spike the live phase so the detector has something to flag.
    let (tuples, injected) =
        inject_anomalies(&clean, &BASE_DIMS, 5, 8.0, W as u64 * T + 1, 6 * W as u64 * T, 13);
    assert_eq!(injected.len(), 5);

    let pool = EnginePool::new(PoolConfig {
        shards: 2,
        base_seed: BASE_SEED,
        queue_depth: 8,
        ..Default::default()
    });
    // Identical engine + identical derived seed, with and without the
    // decorator (same stream id ⇒ same seed; run sequentially).
    let mut plain = pool.open(7, sns_spec()).unwrap();
    replay(&mut plain, &tuples, &plan()).unwrap();
    let plain_report = plain.report().unwrap();
    assert_eq!(plain_report.error, None);
    assert_eq!(plain_report.anomalies, None, "undecorated engines report no summary");
    plain.close();

    let decorated_spec = sns_spec().with_anomaly(AnomalyConfig { threshold: 4.0, max_events: 256 });
    let mut decorated = pool.open(7, decorated_spec).unwrap();
    replay(&mut decorated, &tuples, &plan()).unwrap();
    let decorated_report = decorated.report().unwrap();
    assert_eq!(decorated_report.error, None);
    assert_eq!(decorated_report.name, "Anomaly(SNS+_RND)");
    assert_eq!(
        decorated_report.fitness.to_bits(),
        plain_report.fitness.to_bits(),
        "decoration must not perturb the pooled model"
    );
    assert_eq!(decorated_report.updates_applied, plain_report.updates_applied);

    let summary = decorated_report.anomalies.expect("decorated stream must report a summary");
    assert_eq!(summary.threshold, 4.0);
    assert!(summary.scored > 0);
    assert!(
        summary.flagged >= 1,
        "8x-magnitude spikes must trip the z-score threshold: {summary:?}"
    );
    assert!(summary.max_z >= 4.0);
    decorated.close();
    pool.join();
}
