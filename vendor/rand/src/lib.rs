//! Offline shim for the subset of `rand 0.8` this workspace uses.
//!
//! See `vendor/README.md`: the build environment cannot reach crates.io,
//! so this crate provides the same API surface (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! `seq::SliceRandom::shuffle`) backed by xoshiro256++ instead of
//! ChaCha12. All streams are deterministic under a fixed seed.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Core random-number source: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types a uniform sample can be drawn over (mirrors
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Ranges a uniform value can be drawn from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128) + inclusive as u128;
                let draw = rng.next_u64();
                // The 128-bit modulo below compiles to a libcall; every
                // span that fits in 64 bits (all but the full inclusive
                // `u64` range) takes the single-instruction path. Both
                // branches compute the same value, so the stream a seed
                // produces is unchanged.
                if span <= u64::MAX as u128 {
                    lo + (draw % span as u64) as $t
                } else {
                    lo + (draw as u128 % span) as $t
                }
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_sint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + unit as $t * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean {mean}");
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            let f = rng.gen_range(0.25..0.45);
            assert!((0.25..0.45).contains(&f));
            let t = rng.gen_range(10u64..20);
            assert!((10..20).contains(&t));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "{hits} hits");
    }

    #[test]
    fn shuffle_permutes() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
