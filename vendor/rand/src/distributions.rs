//! Standard distributions backing `Rng::gen`.

use crate::RngCore;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The type's "natural" uniform distribution: `[0, 1)` for floats, the
/// full value range for integers, fair coin for `bool`.
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1) on the float lattice.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
