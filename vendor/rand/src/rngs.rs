//! Named generators. `StdRng` here is xoshiro256++ (Blackman–Vigna),
//! seeded through SplitMix64 exactly as the xoshiro reference code
//! recommends — deterministic, fast, and statistically sound, though its
//! streams differ from upstream `rand`'s ChaCha12-based `StdRng`.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    /// The generator's complete internal state. Together with
    /// [`StdRng::from_state`] this allows a generator to be captured
    /// mid-stream and resumed bitwise-identically (engine snapshots).
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured state; the
    /// resulting generator continues the exact stream the captured one
    /// would have produced.
    #[inline]
    pub fn from_state(s: [u64; 4]) -> Self {
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
