//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! See `vendor/README.md`. The shim runs each benchmark a fixed number of
//! warmup + measurement iterations and prints mean wall time per
//! iteration. There is no statistical analysis, HTML report, or baseline
//! comparison — it exists so `cargo bench` runs offline with unmodified
//! bench sources.

use std::time::{Duration, Instant};

/// How many timed iterations each measurement performs.
const MEASURE_ITERS: u64 = 50;
const WARMUP_ITERS: u64 = 5;

/// Top-level benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _parent: self }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores sample sizing.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks one function in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &BenchmarkId, mut f: F) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0 };
    f(&mut b);
    let per_iter = if b.iters > 0 { b.total.as_secs_f64() / b.iters as f64 } else { f64::NAN };
    println!("  {:<40} {:>12.3} us/iter ({} iters)", id.0, per_iter * 1e6, b.iters);
}

/// Names one benchmark; `From<&str>` plus the two-part constructor.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Two-part id, rendered `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]; ignored by the shim.
pub enum BatchSize {
    /// Mirrors `criterion::BatchSize::SmallInput`.
    SmallInput,
    /// Mirrors `criterion::BatchSize::LargeInput`.
    LargeInput,
    /// Mirrors `criterion::BatchSize::PerIteration`.
    PerIteration,
}

/// Runs and times the measured routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += MEASURE_ITERS;
    }

    /// Times `routine` on inputs built by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Hands the routine an iteration count and trusts its measurement.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let iters = MEASURE_ITERS * 20;
        self.total += routine(iters);
        self.iters += iters;
    }
}

/// Identity function that defeats constant-propagation, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_function(BenchmarkId::new("id", "param"), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    black_box(2 * 2);
                }
                start.elapsed()
            })
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_every_style() {
        benches();
    }
}
