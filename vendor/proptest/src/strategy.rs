//! Value-generation strategies: numeric ranges, tuples, and `prop_map`.

use crate::test_runner::TestRng;

/// Generates values of `Self::Value` from a test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sint_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sint_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, G);
