//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! See `vendor/README.md`. Supported surface: the [`proptest!`] macro
//! (with an optional `#![proptest_config(...)]` header), `prop_assert!`,
//! `prop_assert_eq!`, numeric range strategies, tuple strategies,
//! [`strategy::Strategy::prop_map`], and [`collection::vec`]. Sampling is
//! deterministic per test name; failing inputs are **not** shrunk — the
//! failing case's debug output is the diagnostic.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a normal test that samples its strategies
/// `ProptestConfig::cases` times and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                // The immediately-called closure scopes `?` to this case.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a property; on failure panics with the formatted message (no
/// shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality of two expressions within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0u32..10, y in -5i32..=5, f in 0.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn prop_map_applies(v in (0u32..4, 0u32..3).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(v <= 32);
            prop_assert_eq!(v, v);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u8..255, 0..20)) {
            prop_assert!(v.len() < 20);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0usize..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn cases_vary_across_runs_of_one_test() {
        let mut rng = crate::test_runner::TestRng::for_case("a", 0);
        let mut rng2 = crate::test_runner::TestRng::for_case("a", 1);
        let a = Strategy::sample(&(0u64..u64::MAX), &mut rng);
        let b = Strategy::sample(&(0u64..u64::MAX), &mut rng2);
        assert_ne!(a, b);
    }
}
