//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything usable as a vector-length specification: a fixed `usize` or a
/// half-open `Range<usize>`.
pub trait SizeRange {
    /// Draws a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + (rng.next_u64() as usize) % (self.end - self.start)
    }
}

/// Strategy for `Vec<S::Value>` with the given element strategy and size.
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Mirrors `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}
