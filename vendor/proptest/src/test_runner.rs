//! Test execution config and the deterministic per-case RNG.

/// Subset of `proptest::test_runner::ProptestConfig`: just the case count.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (shim: just the formatted reason).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure from any displayable error, usable point-free as
    /// `map_err(TestCaseError::fail)`.
    pub fn fail<E: std::fmt::Display>(e: E) -> Self {
        TestCaseError(e.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// SplitMix64 generator seeded from the test name and case index, so every
/// property sees a reproducible but distinct input sequence per case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one `(test, case)` pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
    }

    /// Next 64 random bits.
    #[allow(clippy::should_implement_trait)]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
